//! The Contention Estimator (CE, paper §III-D).
//!
//! Periodically probes the storage node's state — CPU utilization, memory
//! use, and the I/O queue — and generates the scheduling policy for every
//! active I/O request in the queue by solving the binary optimization of
//! Eq. 8 over the probed state. The policy is handed to the Active I/O
//! Runtime for execution.
//!
//! `S_{C,op}` is estimated from its maximum value (per-core rate × kernel
//! cores, "achieved when a storage node is fully dedicated to executing the
//! op") scaled by the fraction of CPU not consumed by other duties, exactly
//! as the paper describes. The CE plans with the *nominal* network bandwidth
//! — it cannot observe per-flow jitter — which is one of the two reasons the
//! paper gives for its boundary misjudgments (Table IV).

use crate::config::{OpRates, ProbeConfig};
use crate::cost::{CostModel, RequestSpec};
use crate::schedule::{self, SolverKind};
use pfs::{QueueSnapshot, RequestId};
use serde::{Deserialize, Serialize};
use simkit::{SimSpan, SimTime};
use std::collections::BTreeMap;

/// Per-request scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Serve as requested: kernel runs on the storage node.
    Active,
    /// Serve as normal I/O: ship bytes, client computes.
    Normal,
}

/// The CE's output: one decision per queued active request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    pub decisions: BTreeMap<RequestId, Decision>,
    /// Partial-offload extension: for requests decided `Active`, the
    /// fraction of the data to process on the storage node before a
    /// planned migration (absent or 1.0 = run to completion).
    pub fractions: BTreeMap<RequestId, f64>,
    /// The solver's predicted completion time for the batch.
    pub predicted_time: f64,
    pub generated_at: SimTime,
}

impl Policy {
    /// Decision for `id`; requests unknown to the policy default to Active
    /// (the runtime only acts on explicit demotions).
    pub fn decision(&self, id: RequestId) -> Decision {
        self.decisions.get(&id).copied().unwrap_or(Decision::Active)
    }

    /// Planned storage-side fraction for `id` (1.0 when not split).
    pub fn fraction(&self, id: RequestId) -> f64 {
        self.fractions.get(&id).copied().unwrap_or(1.0)
    }

    pub fn active_count(&self) -> usize {
        self.decisions
            .values()
            .filter(|&&d| d == Decision::Active)
            .count()
    }

    pub fn normal_count(&self) -> usize {
        self.decisions.len() - self.active_count()
    }
}

/// What the CE sees when it probes the node.
#[derive(Debug, Clone)]
pub struct SystemProbe {
    /// The data server's I/O queue (Table II's `n`, `k`, `d_i`, …).
    pub queue: QueueSnapshot,
    /// Fraction of storage CPU consumed by duties *other than* the queued
    /// kernels the CE is about to schedule (e.g. other applications).
    pub background_cpu: f64,
    /// Bytes of storage-node memory pinned by other tenants.
    pub background_memory: f64,
    /// Online estimate of the node's achievable outbound bandwidth
    /// (extension: EWMA over observed saturated-link throughput). `None`
    /// falls back to the nominal bandwidth, as in the paper — whose authors
    /// name the unobserved 111–120 MB/s variation as a misjudgment cause.
    pub bandwidth_estimate: Option<f64>,
}

/// The Contention Estimator.
#[derive(Debug, Clone)]
pub struct ContentionEstimator {
    solver: SolverKind,
    rates: OpRates,
    /// Kernel-usable cores on the storage node.
    kernel_cores: f64,
    /// Cores one client process can apply to a demoted request.
    client_cores: f64,
    /// Nominal network bandwidth, bytes/second.
    nominal_bw: f64,
    /// Storage-node memory available for kernel buffers, bytes.
    memory_capacity: f64,
}

impl ContentionEstimator {
    pub fn new(
        solver: SolverKind,
        rates: OpRates,
        kernel_cores: f64,
        client_cores: f64,
        nominal_bw: f64,
        memory_capacity: f64,
    ) -> Self {
        assert!(kernel_cores > 0.0 && client_cores > 0.0);
        assert!(nominal_bw > 0.0 && memory_capacity > 0.0);
        ContentionEstimator {
            solver,
            rates,
            kernel_cores,
            client_cores,
            nominal_bw,
            memory_capacity,
        }
    }

    /// The cost model the CE plans with, given the probed load.
    pub fn cost_model(&self, probe: &SystemProbe) -> CostModel {
        let available = (1.0 - probe.background_cpu).clamp(0.05, 1.0);
        let bw = probe.bandwidth_estimate.unwrap_or(self.nominal_bw);
        CostModel::new(
            bw,
            self.kernel_cores * available,
            self.client_cores,
            self.rates.clone(),
        )
    }

    /// Generate the scheduling policy for the probed queue (paper Eq. 8).
    pub fn generate_policy(&self, now: SimTime, probe: &SystemProbe) -> Policy {
        // Active rows missing an op are malformed snapshot entries (possible
        // when a probe raced a demotion); skip them rather than panic.
        let rows: Vec<_> = probe
            .queue
            .requests
            .iter()
            .filter(|r| r.is_active() && r.op.is_some())
            .collect();
        if rows.is_empty() {
            return Policy {
                decisions: BTreeMap::new(),
                fractions: BTreeMap::new(),
                predicted_time: 0.0,
                generated_at: now,
            };
        }
        let specs: Vec<RequestSpec> = rows
            .iter()
            .map(|r| RequestSpec::new(r.bytes, r.op.as_deref().unwrap_or_default()))
            .collect();
        let model = self.cost_model(probe);
        let items = model.items(&specs);
        let mut assignment = schedule::solve(self.solver, &items);

        // Memory guard: active kernels pin roughly their request buffers;
        // demote the largest admitted requests until the working set fits.
        let budget = (self.memory_capacity - probe.background_memory).max(0.0);
        let mut admitted: Vec<usize> = (0..rows.len()).filter(|&i| assignment.active[i]).collect();
        let mut pinned: f64 = admitted.iter().map(|&i| rows[i].bytes).sum();
        if pinned > budget {
            admitted.sort_by(|&a, &b| {
                rows[b]
                    .bytes
                    .partial_cmp(&rows[a].bytes)
                    .expect("finite size")
            });
            for &i in &admitted {
                if pinned <= budget {
                    break;
                }
                assignment.active[i] = false;
                pinned -= rows[i].bytes;
            }
            assignment.time = schedule::assignment_time(&items, &assignment.active);
        }

        let decisions = rows
            .iter()
            .zip(&assignment.active)
            .map(|(row, &a)| {
                (
                    row.id,
                    if a {
                        Decision::Active
                    } else {
                        Decision::Normal
                    },
                )
            })
            .collect();
        Policy {
            decisions,
            fractions: BTreeMap::new(),
            predicted_time: assignment.time,
            generated_at: now,
        }
    }

    /// Partial-offload policy (extension): plan a storage-side fraction for
    /// every queued active request using the overlap-aware model of
    /// [`crate::schedule::fractional`]. `p = 0` becomes a plain demotion.
    pub fn generate_split_policy(&self, now: SimTime, probe: &SystemProbe) -> Policy {
        use crate::schedule::fractional::{solve, SplitItem};
        let rows: Vec<_> = probe
            .queue
            .requests
            .iter()
            .filter(|r| r.is_active() && r.op.is_some())
            .collect();
        if rows.is_empty() {
            return Policy {
                decisions: BTreeMap::new(),
                fractions: BTreeMap::new(),
                predicted_time: 0.0,
                generated_at: now,
            };
        }
        let model = self.cost_model(probe);
        let items: Vec<SplitItem> = rows
            .iter()
            .map(|r| {
                let op = r.op.as_deref().unwrap_or_default();
                SplitItem {
                    bytes: r.bytes,
                    storage_rate: model.storage_rate(op),
                    compute_rate: model.compute_rate(op),
                }
            })
            .collect();
        let bw = probe.bandwidth_estimate.unwrap_or(self.nominal_bw);
        let plan = solve(&items, bw);

        let mut decisions = BTreeMap::new();
        let mut fractions = BTreeMap::new();
        for (row, &p) in rows.iter().zip(&plan.fractions) {
            if p <= 1e-9 {
                decisions.insert(row.id, Decision::Normal);
            } else {
                decisions.insert(row.id, Decision::Active);
                if p < 1.0 - 1e-9 {
                    fractions.insert(row.id, p);
                }
            }
        }
        Policy {
            decisions,
            fractions,
            predicted_time: plan.predicted,
            generated_at: now,
        }
    }

    /// Static comparison of the two pure schemes for one homogeneous batch —
    /// this is the "Algorithm Decision" column of Table IV.
    pub fn static_decision(&self, op: &str, bytes: f64, n_requests: usize) -> Decision {
        let model = CostModel::new(
            self.nominal_bw,
            self.kernel_cores,
            self.client_cores,
            self.rates.clone(),
        );
        let sizes = vec![bytes; n_requests];
        let t_active = model.t_all_active(op, bytes * n_requests as f64, 0.0);
        let t_normal = model.t_all_normal(op, &sizes);
        if t_active <= t_normal {
            Decision::Active
        } else {
            Decision::Normal
        }
    }
}

/// What the CE should do after a probe failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeVerdict {
    /// Send another probe `after` this long (measured from the time the
    /// failure was observed — send time for losses, arrival time for stale
    /// policies).
    Retry { after: SimSpan },
    /// Retries exhausted: stop acting on policies. The runtime serves every
    /// request as requested (static all-Active, the traditional
    /// active-storage behaviour) until a probe succeeds again.
    Fallback,
}

/// Counters of the CE's probe-robustness machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CeStats {
    pub probes_sent: u64,
    pub probes_lost: u64,
    /// Retry verdicts issued (the driver may not schedule all of them;
    /// arrival-triggered probes don't spawn their own retries).
    pub retries: u64,
    /// Policies discarded because they arrived past the staleness bound.
    pub stale_discards: u64,
    pub fallback_entries: u64,
    pub recoveries: u64,
}

impl CeStats {
    /// Fold another supervisor's counters into this aggregate.
    pub fn absorb(&mut self, other: &CeStats) {
        self.probes_sent += other.probes_sent;
        self.probes_lost += other.probes_lost;
        self.retries += other.retries;
        self.stale_discards += other.stale_discards;
        self.fallback_entries += other.fallback_entries;
        self.recoveries += other.recoveries;
    }
}

/// Supervises one storage node's probe loop: bounded retry with exponential
/// backoff on probe loss, staleness checks on delayed policies, and the
/// fallback/recovery state machine. Pure (no scheduling, no I/O): callers
/// feed it probe outcomes and act on the verdicts, which keeps every
/// transition unit-testable.
#[derive(Debug, Clone)]
pub struct CeSupervisor {
    cfg: ProbeConfig,
    /// Consecutive failures in the current outage (resets on success).
    failures: u32,
    fallback: bool,
    last_success: Option<SimTime>,
    pub stats: CeStats,
}

impl CeSupervisor {
    pub fn new(cfg: ProbeConfig) -> Self {
        CeSupervisor {
            cfg,
            failures: 0,
            fallback: false,
            last_success: None,
            stats: CeStats::default(),
        }
    }

    pub fn config(&self) -> &ProbeConfig {
        &self.cfg
    }

    /// Is the CE currently fallen back to the static all-Active policy?
    pub fn in_fallback(&self) -> bool {
        self.fallback
    }

    /// Time of the last successfully applied probe, if any.
    pub fn last_success(&self) -> Option<SimTime> {
        self.last_success
    }

    /// Age of the CE's knowledge at `now`, in seconds: time since the last
    /// successfully applied probe, or `-1.0` if none succeeded yet. This is
    /// the staleness signal the observability sampler exports per server.
    pub fn probe_age_secs(&self, now: SimTime) -> f64 {
        self.last_success.map_or(-1.0, |t| (now - t).as_secs_f64())
    }

    /// A probe was sent (accounting only).
    pub fn on_probe_sent(&mut self) {
        self.stats.probes_sent += 1;
    }

    /// The probe sent at `sent` got no reply within the timeout. Returns
    /// `Retry { after }` with `after` measured from `sent` (the CE only
    /// *notices* the loss at `sent + timeout`, so the k-th retry goes out
    /// at `sent + timeout + backoff · 2^k`), or `Fallback` once the retry
    /// budget is spent.
    pub fn on_probe_lost(&mut self, _sent: SimTime) -> ProbeVerdict {
        self.stats.probes_lost += 1;
        self.register_failure(self.cfg.timeout)
    }

    /// A delayed policy arrived at `now` but was older than the staleness
    /// bound and was discarded. Counts as a failure; any retry delay is
    /// measured from `now` (the timeout has implicitly already passed).
    pub fn on_stale_policy(&mut self, _now: SimTime) -> ProbeVerdict {
        self.stats.stale_discards += 1;
        self.register_failure(SimSpan::ZERO)
    }

    /// A probe round-trip completed and its policy was fresh enough to act
    /// on: reset the failure budget and leave fallback if active.
    pub fn on_probe_success(&mut self, now: SimTime) {
        self.failures = 0;
        self.last_success = Some(now);
        if self.fallback {
            self.fallback = false;
            self.stats.recoveries += 1;
        }
    }

    /// May a policy generated at `generated_at` still be applied at `now`?
    /// Exactly at the bound is still usable (`age <= staleness_bound`).
    pub fn policy_usable(&self, generated_at: SimTime, now: SimTime) -> bool {
        now.saturating_sub(generated_at) <= self.cfg.staleness_bound
    }

    fn register_failure(&mut self, base: SimSpan) -> ProbeVerdict {
        if self.failures >= self.cfg.max_retries {
            if !self.fallback {
                self.fallback = true;
                self.stats.fallback_entries += 1;
            }
            ProbeVerdict::Fallback
        } else {
            let shift = self.failures.min(16);
            let backoff =
                SimSpan::from_nanos(self.cfg.retry_backoff.as_nanos().saturating_mul(1 << shift));
            self.failures += 1;
            self.stats.retries += 1;
            ProbeVerdict::Retry {
                after: base + backoff,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfs::{DataServer, IoKind, QueuedRequest};

    const MIB: f64 = 1024.0 * 1024.0;

    fn estimator() -> ContentionEstimator {
        ContentionEstimator::new(
            SolverKind::Threshold,
            OpRates::paper(),
            1.0,
            1.0,
            118.0 * MIB,
            16.0 * 1024.0 * MIB,
        )
    }

    fn probe_with(reqs: &[(u64, &str, f64)]) -> SystemProbe {
        let mut ds = DataServer::new(cluster::NodeId(8));
        for &(id, op, bytes) in reqs {
            ds.arrive(
                SimTime::ZERO,
                QueuedRequest {
                    id: RequestId(id),
                    kind: if op.is_empty() {
                        IoKind::Normal
                    } else {
                        IoKind::Active { op: op.into() }
                    },
                    bytes,
                    client: cluster::NodeId(0),
                    arrived: SimTime::ZERO,
                },
            );
        }
        SystemProbe {
            queue: ds.snapshot(SimTime::ZERO),
            background_cpu: 0.0,
            background_memory: 0.0,
            bandwidth_estimate: None,
        }
    }

    #[test]
    fn small_gaussian_batch_stays_active() {
        let ce = estimator();
        let probe = probe_with(&[
            (0, "gaussian2d", 128.0 * MIB),
            (1, "gaussian2d", 128.0 * MIB),
        ]);
        let p = ce.generate_policy(SimTime::ZERO, &probe);
        assert_eq!(p.decisions.len(), 2);
        assert_eq!(p.active_count(), 2);
    }

    #[test]
    fn large_gaussian_batch_is_demoted() {
        let ce = estimator();
        let reqs: Vec<(u64, &str, f64)> = (0..16).map(|i| (i, "gaussian2d", 128.0 * MIB)).collect();
        let p = ce.generate_policy(SimTime::ZERO, &probe_with(&reqs));
        assert_eq!(
            p.normal_count(),
            16,
            "16 concurrent Gaussians overload the node"
        );
    }

    #[test]
    fn sum_never_demoted() {
        let ce = estimator();
        let reqs: Vec<(u64, &str, f64)> = (0..64).map(|i| (i, "sum", 128.0 * MIB)).collect();
        let p = ce.generate_policy(SimTime::ZERO, &probe_with(&reqs));
        assert_eq!(
            p.active_count(),
            64,
            "860 MB/s/core >> network: always offload"
        );
    }

    #[test]
    fn normal_requests_are_ignored() {
        let ce = estimator();
        let p = ce.generate_policy(
            SimTime::ZERO,
            &probe_with(&[(0, "", 128.0 * MIB), (1, "sum", 64.0 * MIB)]),
        );
        assert_eq!(p.decisions.len(), 1);
        assert_eq!(p.decision(RequestId(1)), Decision::Active);
        // Unknown ids default to Active.
        assert_eq!(p.decision(RequestId(99)), Decision::Active);
    }

    #[test]
    fn background_cpu_shrinks_storage_capability() {
        let ce = estimator();
        let mut probe = probe_with(&[(0, "gaussian2d", 128.0 * MIB)]);
        probe.background_cpu = 0.9;
        let model = ce.cost_model(&probe);
        // 80 MB/s × 0.1 = 8 MB/s effective.
        assert!((model.storage_rate("gaussian2d") / MIB - 8.0).abs() < 1e-6);
        // With 90% of the CPU gone even one Gaussian is better demoted:
        // 128/8 = 16 s active vs 128/118 + 128/80 ≈ 2.7 s normal.
        let p = ce.generate_policy(SimTime::ZERO, &probe);
        assert_eq!(p.decision(RequestId(0)), Decision::Normal);
    }

    #[test]
    fn memory_pressure_demotes_largest_requests() {
        let ce = ContentionEstimator::new(
            SolverKind::Threshold,
            OpRates::paper(),
            1.0,
            1.0,
            118.0 * MIB,
            300.0 * MIB, // tiny memory: fits ~2 of the 128 MB buffers
        );
        let reqs: Vec<(u64, &str, f64)> = (0..4).map(|i| (i, "sum", 128.0 * MIB)).collect();
        let p = ce.generate_policy(SimTime::ZERO, &probe_with(&reqs));
        assert_eq!(p.active_count(), 2, "only two buffers fit in memory");
    }

    #[test]
    fn static_decision_matches_figure_2_crossover() {
        let ce = estimator();
        assert_eq!(
            ce.static_decision("gaussian2d", 128.0 * MIB, 2),
            Decision::Active
        );
        assert_eq!(
            ce.static_decision("gaussian2d", 128.0 * MIB, 16),
            Decision::Normal
        );
        assert_eq!(ce.static_decision("sum", 128.0 * MIB, 64), Decision::Active);
    }

    #[test]
    fn empty_queue_yields_empty_policy() {
        let ce = estimator();
        let p = ce.generate_policy(SimTime::ZERO, &probe_with(&[]));
        assert!(p.decisions.is_empty());
        assert_eq!(p.predicted_time, 0.0);
    }

    #[test]
    fn split_policy_balances_mid_contention() {
        let ce = estimator();
        let reqs: Vec<(u64, &str, f64)> = (0..8).map(|i| (i, "gaussian2d", 128.0 * MIB)).collect();
        let p = ce.generate_split_policy(SimTime::ZERO, &probe_with(&reqs));
        assert_eq!(p.decisions.len(), 8);
        assert_eq!(p.active_count(), 8, "split mode keeps requests active");
        // Every request gets a genuine interior fraction.
        for i in 0..8 {
            let f = p.fraction(RequestId(i));
            assert!(f > 0.2 && f < 0.8, "fraction {f}");
        }
        // Predicted time beats both endpoints' analytic times.
        assert!(p.predicted_time < 8.0 * 1.6);
    }

    #[test]
    fn split_policy_keeps_cheap_kernels_whole() {
        let ce = estimator();
        let p = ce.generate_split_policy(SimTime::ZERO, &probe_with(&[(0, "sum", 128.0 * MIB)]));
        assert_eq!(p.fraction(RequestId(0)), 1.0, "sum never splits");
        assert!(p.fractions.is_empty());
    }

    #[test]
    fn split_policy_bandwidth_estimate_shifts_balance() {
        let ce = estimator();
        let mut probe = probe_with(&[(0, "gaussian2d", 128.0 * MIB); 1]);
        // Re-id the request properly (probe_with used id 0).
        let base = ce.generate_split_policy(SimTime::ZERO, &probe);
        probe.bandwidth_estimate = Some(40.0 * MIB); // network collapsed
        let degraded = ce.generate_split_policy(SimTime::ZERO, &probe);
        // With a slow network, more of the work should stay on storage.
        assert!(
            degraded.fraction(RequestId(0)) >= base.fraction(RequestId(0)),
            "slower wire must not shrink the storage share"
        );
    }

    #[test]
    fn policy_fraction_defaults_to_one() {
        let p = Policy {
            decisions: BTreeMap::new(),
            fractions: BTreeMap::new(),
            predicted_time: 0.0,
            generated_at: SimTime::ZERO,
        };
        assert_eq!(p.fraction(RequestId(9)), 1.0);
    }

    // ----- CeSupervisor (probe robustness) -----

    fn probe_cfg() -> ProbeConfig {
        ProbeConfig {
            timeout: SimSpan::from_millis(20),
            max_retries: 2,
            retry_backoff: SimSpan::from_millis(10),
            staleness_bound: SimSpan::from_millis(300),
            min_bw_samples: 3,
        }
    }

    #[test]
    fn retries_back_off_exponentially_then_fall_back() {
        let mut sup = CeSupervisor::new(probe_cfg());
        let t = SimTime::ZERO;
        // Attempt 0 lost → retry after timeout + backoff·2^0.
        assert_eq!(
            sup.on_probe_lost(t),
            ProbeVerdict::Retry {
                after: SimSpan::from_millis(30)
            }
        );
        // Attempt 1 lost → timeout + backoff·2^1.
        assert_eq!(
            sup.on_probe_lost(t),
            ProbeVerdict::Retry {
                after: SimSpan::from_millis(40)
            }
        );
        // Retry budget (2) spent: the third loss falls back.
        assert_eq!(sup.on_probe_lost(t), ProbeVerdict::Fallback);
        assert!(sup.in_fallback());
        assert_eq!(sup.stats.probes_lost, 3);
        assert_eq!(sup.stats.retries, 2);
        assert_eq!(sup.stats.fallback_entries, 1);
        // Staying lost does not re-enter fallback (no double counting).
        assert_eq!(sup.on_probe_lost(t), ProbeVerdict::Fallback);
        assert_eq!(sup.stats.fallback_entries, 1);
    }

    #[test]
    fn zero_retry_config_falls_back_on_first_loss() {
        let mut sup = CeSupervisor::new(ProbeConfig {
            max_retries: 0,
            ..probe_cfg()
        });
        assert_eq!(sup.on_probe_lost(SimTime::ZERO), ProbeVerdict::Fallback);
        assert!(sup.in_fallback());
        assert_eq!(sup.stats.retries, 0);
    }

    #[test]
    fn policy_exactly_at_staleness_deadline_is_usable() {
        let sup = CeSupervisor::new(probe_cfg());
        let generated = SimTime::from_secs_f64(1.0);
        let bound = probe_cfg().staleness_bound;
        assert!(sup.policy_usable(generated, generated));
        assert!(
            sup.policy_usable(generated, generated + bound),
            "age == bound is usable"
        );
        assert!(
            !sup.policy_usable(generated, generated + bound + SimSpan::from_nanos(1)),
            "one nanosecond past the bound is stale"
        );
    }

    #[test]
    fn fallback_then_recovery() {
        let mut sup = CeSupervisor::new(ProbeConfig {
            max_retries: 0,
            ..probe_cfg()
        });
        sup.on_probe_sent();
        assert_eq!(sup.on_probe_lost(SimTime::ZERO), ProbeVerdict::Fallback);
        assert!(sup.in_fallback());
        // The node answers again: the CE resumes dynamic scheduling.
        let t = SimTime::from_secs_f64(2.0);
        sup.on_probe_success(t);
        assert!(!sup.in_fallback());
        assert_eq!(sup.last_success(), Some(t));
        assert_eq!(sup.stats.recoveries, 1);
        // And the failure budget is fresh: the next loss is a fallback
        // again (zero retries), counted as a second entry.
        assert_eq!(sup.on_probe_lost(t), ProbeVerdict::Fallback);
        assert_eq!(sup.stats.fallback_entries, 2);
    }

    #[test]
    fn stale_policy_counts_and_retries_without_timeout() {
        let mut sup = CeSupervisor::new(probe_cfg());
        // Staleness is noticed at arrival: retry delay omits the timeout.
        assert_eq!(
            sup.on_stale_policy(SimTime::ZERO),
            ProbeVerdict::Retry {
                after: SimSpan::from_millis(10)
            }
        );
        assert_eq!(sup.stats.stale_discards, 1);
        assert_eq!(sup.stats.probes_lost, 0);
    }
}
