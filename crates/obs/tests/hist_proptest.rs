//! Property test for [`obs::Histogram`] quantiles: against arbitrary
//! observation sets, every estimated quantile lands within one bucket of
//! the exact nearest-rank quantile. This is the accuracy contract the
//! fixed-bucket design promises (the estimate is the upper bound of the
//! bucket holding the nearest-rank sample, so it can be off by at most the
//! bucket that sample shares a boundary with).

use obs::Histogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn quantile_is_within_one_bucket_of_exact(
        // Log-uniform over the default bounds' range plus both tails
        // (underflow below 1 µs, overflow above 1000 s).
        exps in proptest::collection::vec(-7.0f64..4.0, 1..400),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut h = Histogram::latency_default();
        let mut xs: Vec<f64> = exps.iter().map(|e| 10f64.powf(*e)).collect();
        for &x in &xs {
            h.observe(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &qs {
            let rank = ((q * xs.len() as f64).ceil() as usize).max(1);
            let exact = xs[rank - 1];
            let est = h.quantile(q).expect("non-empty histogram");
            let d = (h.bucket_index(est) as i64 - h.bucket_index(exact) as i64).abs();
            prop_assert!(
                d <= 1,
                "q={q}: estimate {est} is {d} buckets from exact {exact}"
            );
        }
    }

    #[test]
    fn count_and_sum_are_exact(xs in proptest::collection::vec(0.0f64..1e6, 0..200)) {
        let mut h = Histogram::latency_default();
        for &x in &xs {
            h.observe(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        let exact: f64 = xs.iter().sum();
        prop_assert!((h.sum() - exact).abs() <= 1e-9 * exact.abs().max(1.0));
    }
}
