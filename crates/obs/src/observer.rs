//! The [`Observer`]: per-run observability state, and the frozen
//! [`ObsReport`] it becomes when a run finishes.
//!
//! An `Observer` bundles the metrics [`Registry`], the structured
//! [`EventLog`] and the [`SampleRing`] under one monotone sequence counter,
//! so samples and log records interleave in a single deterministic order —
//! the order the timeline exporter emits. Everything is plain owned state;
//! the driver stores the observer inside its telemetry subsystem and only
//! touches it when [`ObsConfig::enabled`] is set, keeping the disabled path
//! free of allocation and formatting.

use crate::log::{EventLog, LogRecord, Severity};
use crate::registry::Registry;
use crate::series::{SampleRecord, SampleRing, ServerSample};
use serde::{Deserialize, Serialize};
use simkit::{SimSpan, SimTime};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::{Arc, Mutex};

/// Observability configuration, embedded in `DriverConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch; when false no observer is constructed at all.
    pub enabled: bool,
    /// Period of the sim-time `Sample` tick.
    pub sample_period: SimSpan,
    /// Capacity of the timeline sample ring.
    pub sample_capacity: usize,
    /// Capacity of the structured event log ring.
    pub event_log_capacity: usize,
    /// When set, every timeline record (sample or event) is appended to this
    /// file as one JSONL line *at record time* and the in-memory rings stay
    /// empty — a long-horizon soak run keeps O(1) observability memory
    /// instead of ring-buffering and dropping. The line format is exactly
    /// [`ObsReport::timeline_jsonl`]'s, so the streamed file validates and
    /// round-trips identically. (A `String` rather than a `PathBuf` because
    /// the vendored serde has no filesystem-type impls.)
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stream_path: Option<String>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            sample_period: SimSpan::from_millis(10),
            sample_capacity: 65_536,
            event_log_capacity: 8_192,
            stream_path: None,
        }
    }
}

impl ObsConfig {
    /// The default configuration with the master switch on.
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// Enabled, with the timeline streamed to `path` instead of retained.
    pub fn streaming(path: impl Into<String>) -> Self {
        ObsConfig {
            stream_path: Some(path.into()),
            ..ObsConfig::enabled()
        }
    }
}

/// Live observability state for one simulation run.
#[derive(Debug, Clone)]
pub struct Observer {
    cfg: ObsConfig,
    registry: Registry,
    log: EventLog,
    samples: SampleRing,
    seq: u64,
    /// Open streaming sink when [`ObsConfig::stream_path`] is set. Shared
    /// behind `Arc` only so the observer stays `Clone`; the simulation never
    /// writes from more than one place.
    sink: Option<Arc<Mutex<BufWriter<File>>>>,
    streamed: u64,
}

impl Observer {
    /// Build an observer for the given configuration. Panics if the
    /// streaming sink file cannot be created — a soak run that silently
    /// drops its timeline is worse than one that refuses to start.
    pub fn new(cfg: ObsConfig) -> Self {
        let log = EventLog::new(cfg.event_log_capacity);
        let samples = SampleRing::new(cfg.sample_capacity);
        let sink = cfg.stream_path.as_ref().map(|p| {
            let f = File::create(p)
                .unwrap_or_else(|e| panic!("cannot create obs stream file {p:?}: {e}"));
            Arc::new(Mutex::new(BufWriter::new(f)))
        });
        Observer {
            cfg,
            registry: Registry::new(),
            log,
            samples,
            seq: 0,
            sink,
            streamed: 0,
        }
    }

    /// Write one timeline row to the streaming sink. Returns false (leaving
    /// ring retention to the caller) when streaming is off.
    fn stream(&mut self, row: &TimelineRecord) -> bool {
        let Some(sink) = &self.sink else {
            return false;
        };
        let line = serde_json::to_string(row).expect("timeline row serializes");
        let mut w = sink.lock().expect("obs stream sink poisoned");
        writeln!(w, "{line}").expect("obs stream write failed");
        self.streamed += 1;
        true
    }

    /// The configuration this observer was built with.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Mutable access to the metrics registry.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Read access to the metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Append a structured log record.
    pub fn log(
        &mut self,
        t: SimTime,
        severity: Severity,
        subsystem: &'static str,
        node: Option<usize>,
        message: String,
    ) {
        let seq = self.seq;
        self.seq += 1;
        let rec = LogRecord {
            seq,
            t,
            severity,
            subsystem: subsystem.to_string(),
            node,
            message,
        };
        let row = TimelineRecord::Event(rec);
        if self.stream(&row) {
            return;
        }
        let TimelineRecord::Event(rec) = row else {
            unreachable!()
        };
        self.log.push(rec);
    }

    /// Append a timeline sample (per-server rows ordered by node ordinal).
    pub fn record_sample(&mut self, t: SimTime, servers: Vec<ServerSample>) {
        let seq = self.seq;
        self.seq += 1;
        let row = TimelineRecord::Sample(SampleRecord { seq, t, servers });
        if self.stream(&row) {
            return;
        }
        let TimelineRecord::Sample(rec) = row else {
            unreachable!()
        };
        self.samples.push(rec);
    }

    /// Number of samples recorded so far (including any later evicted, but
    /// not those written to a streaming sink).
    pub fn samples_len(&self) -> usize {
        self.samples.len()
    }

    /// Timeline rows written to the streaming sink so far.
    pub fn records_streamed(&self) -> u64 {
        self.streamed
    }

    /// Freeze into an immutable end-of-run report, flushing any streaming
    /// sink so the JSONL file is complete when the run returns.
    pub fn into_report(self) -> ObsReport {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("obs stream sink poisoned")
                .flush()
                .expect("obs stream flush failed");
        }
        let (events, events_dropped) = self.log.into_parts();
        let (samples, samples_dropped) = self.samples.into_parts();
        ObsReport {
            metrics: self.registry,
            samples,
            samples_dropped,
            events,
            events_dropped,
            records_streamed: self.streamed,
        }
    }
}

/// A merged timeline row: either a periodic sample or a log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimelineRecord {
    /// Periodic per-server sample.
    Sample(SampleRecord),
    /// Structured log event.
    Event(LogRecord),
}

impl TimelineRecord {
    /// The shared sequence number, used for merge ordering.
    pub fn seq(&self) -> u64 {
        match self {
            TimelineRecord::Sample(s) => s.seq,
            TimelineRecord::Event(e) => e.seq,
        }
    }

    /// The simulation time of the row.
    pub fn time(&self) -> SimTime {
        match self {
            TimelineRecord::Sample(s) => s.t,
            TimelineRecord::Event(e) => e.t,
        }
    }
}

/// Frozen end-of-run observability report.
#[derive(Debug, Clone, Serialize)]
pub struct ObsReport {
    /// Final metrics registry.
    pub metrics: Registry,
    /// Retained timeline samples, oldest first.
    pub samples: Vec<SampleRecord>,
    /// Samples evicted from the ring.
    pub samples_dropped: u64,
    /// Retained log records, oldest first.
    pub events: Vec<LogRecord>,
    /// Log records evicted from the ring.
    pub events_dropped: u64,
    /// Timeline rows written to the streaming sink instead of the rings
    /// (zero unless [`ObsConfig::stream_path`] was set).
    pub records_streamed: u64,
}

impl ObsReport {
    /// Render the Prometheus text-format snapshot, including the ring drop
    /// counters as synthetic counters.
    pub fn to_prometheus(&self) -> String {
        let mut text = self.metrics.to_prometheus();
        text.push_str("# TYPE dosas_obs_samples_dropped_total counter\n");
        text.push_str(&format!(
            "dosas_obs_samples_dropped_total {}\n",
            self.samples_dropped
        ));
        text.push_str("# TYPE dosas_obs_events_dropped_total counter\n");
        text.push_str(&format!(
            "dosas_obs_events_dropped_total {}\n",
            self.events_dropped
        ));
        text.push_str("# TYPE dosas_obs_records_streamed_total counter\n");
        text.push_str(&format!(
            "dosas_obs_records_streamed_total {}\n",
            self.records_streamed
        ));
        text
    }

    /// Merge samples and events into one sequence-ordered timeline.
    pub fn timeline_records(&self) -> Vec<TimelineRecord> {
        let mut rows: Vec<TimelineRecord> = self
            .samples
            .iter()
            .cloned()
            .map(TimelineRecord::Sample)
            .chain(self.events.iter().cloned().map(TimelineRecord::Event))
            .collect();
        rows.sort_by_key(|r| r.seq());
        rows
    }

    /// Render the merged timeline as JSONL (one record per line).
    pub fn timeline_jsonl(&self) -> String {
        let mut out = String::new();
        for row in self.timeline_records() {
            out.push_str(&serde_json::to_string(&row).expect("timeline row serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Label;

    #[test]
    fn observer_merges_samples_and_events_by_seq() {
        let mut o = Observer::new(ObsConfig::enabled());
        o.log(
            SimTime::from_nanos(5),
            Severity::Info,
            "control",
            None,
            "first".into(),
        );
        o.record_sample(SimTime::from_nanos(10), vec![]);
        o.log(
            SimTime::from_nanos(10),
            Severity::Warn,
            "faults",
            Some(2),
            "second".into(),
        );
        o.registry_mut().inc("io", "requests", Label::None);
        let report = o.into_report();
        let rows = report.timeline_records();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.seq()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(matches!(rows[0], TimelineRecord::Event(_)));
        assert!(matches!(rows[1], TimelineRecord::Sample(_)));
    }

    #[test]
    fn jsonl_roundtrips() {
        let mut o = Observer::new(ObsConfig::enabled());
        o.record_sample(SimTime::from_nanos(7), vec![]);
        o.log(
            SimTime::from_nanos(9),
            Severity::Error,
            "server",
            Some(0),
            "boom".into(),
        );
        let report = o.into_report();
        let jsonl = report.timeline_jsonl();
        let rows: Vec<TimelineRecord> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(rows, report.timeline_records());
    }

    #[test]
    fn report_prometheus_includes_drop_counters() {
        let o = Observer::new(ObsConfig::enabled());
        let text = o.into_report().to_prometheus();
        assert!(text.contains("dosas_obs_samples_dropped_total 0"));
        assert!(text.contains("dosas_obs_records_streamed_total 0"));
        crate::export::validate_prometheus(&text).unwrap();
    }

    #[test]
    fn streaming_sink_replaces_the_rings() {
        let dir = std::env::temp_dir().join(format!("obs-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeline.jsonl");
        let mut o = Observer::new(ObsConfig::streaming(path.to_str().unwrap()));
        o.record_sample(SimTime::from_nanos(7), vec![]);
        o.log(
            SimTime::from_nanos(9),
            Severity::Info,
            "control",
            Some(1),
            "streamed".into(),
        );
        assert_eq!(o.samples_len(), 0, "rings stay empty while streaming");
        assert_eq!(o.records_streamed(), 2);
        let report = o.into_report();
        assert_eq!(report.records_streamed, 2);
        assert!(report.samples.is_empty() && report.events.is_empty());
        // The streamed file is the timeline: same line format, seq-ordered.
        let text = std::fs::read_to_string(&path).unwrap();
        let rows: Vec<TimelineRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].seq(), 0);
        assert!(matches!(rows[0], TimelineRecord::Sample(_)));
        assert!(matches!(rows[1], TimelineRecord::Event(_)));
        for (line, row) in text.lines().zip(&rows) {
            assert_eq!(line, serde_json::to_string(row).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
