//! Sim-time-driven time-series sampling.
//!
//! A [`SampleRecord`] is one row of the timeline: the simulation time plus a
//! vector of per-server observations ([`ServerSample`]). Samples are taken by
//! the driver's telemetry subsystem on a periodic `Sample` event scheduled on
//! the global lane, so the series is a pure function of simulation state and
//! byte-identical across serial and parallel execution.
//!
//! `queue_depth_integral` carries the *cumulative* time-weighted integral of
//! the disk queue depth (∫ depth dt since t=0) rather than an instantaneous
//! reading: dividing the final value by elapsed time reproduces
//! `RunMetrics::mean_queue_depth` exactly, which the integration acceptance
//! test pins to 1e-9.

use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::collections::VecDeque;

/// Per-server observations at one sample instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSample {
    /// Storage-node ordinal (the `NodeId` index).
    pub node: usize,
    /// Instantaneous disk queue depth (queued + in service).
    pub queue_depth: f64,
    /// Cumulative time-weighted queue-depth integral since t=0 (unit:
    /// requests·seconds).
    pub queue_depth_integral: f64,
    /// Active-storage kernels currently executing on the node's CPU.
    pub kernels_running: usize,
    /// Seconds since the contention estimator last heard a successful probe
    /// from this node; negative when no probe has ever succeeded (or the
    /// scheme runs without a CE).
    pub probe_age_secs: f64,
    /// Cumulative active->normal demotions on this node.
    pub demoted_total: u64,
    /// Outbound network utilization of the node's fabric port, in [0, 1].
    pub net_tx_util: f64,
}

/// One timeline sample: sim time plus every storage server's observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Global emission order (shared with log records).
    pub seq: u64,
    /// Simulation time of the sample.
    pub t: SimTime,
    /// Per-server rows, ordered by node ordinal.
    pub servers: Vec<ServerSample>,
}

/// Bounded ring of [`SampleRecord`]s with a drop counter.
#[derive(Debug, Clone)]
pub struct SampleRing {
    cap: usize,
    samples: VecDeque<SampleRecord>,
    dropped: u64,
}

impl SampleRing {
    /// New ring holding at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        SampleRing {
            cap,
            samples: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append a sample, evicting the oldest when full.
    pub fn push(&mut self, s: SampleRecord) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.samples.len() == self.cap {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(s);
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &SampleRecord> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the ring, returning retained samples and the drop count.
    pub fn into_parts(self) -> (Vec<SampleRecord>, u64) {
        (self.samples.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> SampleRecord {
        SampleRecord {
            seq,
            t: SimTime::from_nanos(seq * 1_000_000),
            servers: vec![ServerSample {
                node: 0,
                queue_depth: 2.0,
                queue_depth_integral: 0.5 * seq as f64,
                kernels_running: 1,
                probe_age_secs: 0.01,
                demoted_total: seq,
                net_tx_util: 0.5,
            }],
        }
    }

    #[test]
    fn ring_bounds_and_drops() {
        let mut ring = SampleRing::new(2);
        for s in 0..4 {
            ring.push(sample(s));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(
            ring.samples().map(|s| s.seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn sample_roundtrips_through_serde() {
        let s = sample(3);
        let json = serde_json::to_string(&s).unwrap();
        let back: SampleRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
