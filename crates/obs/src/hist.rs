//! Fixed-bucket histograms with approximate quantiles.
//!
//! A [`Histogram`] owns a sorted list of finite bucket upper bounds plus an
//! implicit `+inf` overflow bucket, mirroring the Prometheus histogram model.
//! Observations are O(log B) (binary search over bounds); quantile queries
//! return the *upper bound of the bucket containing the nearest-rank sample*,
//! which by construction is within one bucket of the exact nearest-rank
//! quantile — the property the obs proptest suite pins down.
//!
//! The default bounds ([`Histogram::latency_default`]) are log-spaced with
//! four buckets per decade from 1 µs to 1000 s, suitable for simulated I/O
//! latencies across every scheme the driver runs.

use serde::Serialize;

/// A fixed-bucket histogram: monotonically increasing finite upper bounds
/// plus an implicit overflow bucket.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// Finite bucket upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (last = overflow).
    counts: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
    /// Total number of observations.
    count: u64,
}

impl Histogram {
    /// Build a histogram over the given finite upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty, unsorted, or contains non-finite values.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Log-spaced latency bounds: four buckets per decade, 1 µs ..= 1000 s.
    pub fn latency_default() -> Self {
        let bounds: Vec<f64> = (-24..=12).map(|k| 10f64.powf(k as f64 / 4.0)).collect();
        Histogram::new(bounds)
    }

    /// Index of the bucket a value falls in (overflow bucket = `bounds.len()`).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.partition_point(|b| *b < v)
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self.bucket_index(v);
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile: the upper bound of the bucket holding the
    /// nearest-rank sample. Returns `None` when empty. Values that landed in
    /// the overflow bucket report the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r (1-based) with r >= q * count.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    *self.bounds.last().expect("non-empty bounds")
                });
            }
        }
        unreachable!("cumulative count must reach total count")
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_range() {
        let h = Histogram::latency_default();
        assert_eq!(h.counts().len(), h.bounds().len() + 1);
        assert!(h.bounds()[0] <= 1.1e-6);
        assert!(*h.bounds().last().unwrap() >= 999.0);
    }

    #[test]
    fn observe_and_quantiles() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.7, 3.0, 7.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 113.7).abs() < 1e-12);
        // rank(0.5 * 6) = 3 -> third sample (1.7) lives in bucket <=2.0.
        assert_eq!(h.p50(), Some(2.0));
        // Overflow values clamp to the last finite bound.
        assert_eq!(h.p99(), Some(8.0));
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = Histogram::latency_default();
        assert_eq!(h.p50(), None);
    }

    #[test]
    fn quantile_within_one_bucket_of_exact() {
        // Deterministic sweep complementing the proptest in tests/.
        let mut h = Histogram::latency_default();
        let mut xs: Vec<f64> = (0..500).map(|i| 1e-5 * 1.03f64.powi(i % 300)).collect();
        for &x in &xs {
            h.observe(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * xs.len() as f64).ceil() as usize).max(1);
            let exact = xs[rank - 1];
            let est = h.quantile(q).unwrap();
            let d = (h.bucket_index(est) as i64 - h.bucket_index(exact) as i64).abs();
            assert!(d <= 1, "q={q}: est {est} vs exact {exact} ({d} buckets)");
        }
    }
}
