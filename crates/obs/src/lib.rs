//! # obs — deterministic observability core
//!
//! A lightweight, vendored-deps-only observability layer for the DOSAS
//! reproduction: metrics, structured logging, time-series sampling and
//! exporters, all designed around simkit's determinism rules.
//!
//! Modules:
//!
//! * [`registry`] — counters, gauges and fixed-bucket histograms keyed by
//!   `(subsystem, name, label)`; allocation-free hot path, `BTreeMap`-ordered
//!   deterministic export.
//! * [`hist`] — the histogram itself, with nearest-rank bucket quantiles
//!   (p50/p95/p99) guaranteed within one bucket of exact.
//! * [`log`] — ring-buffered structured event log (severity + sim-time +
//!   subsystem) with drop counters.
//! * [`series`] — sim-time-driven per-server samples and their ring buffer;
//!   carries cumulative queue-depth integrals so the timeline reconciles
//!   exactly with end-of-run aggregates.
//! * [`observer`] — the per-run [`Observer`] bundling all of the above under
//!   one sequence counter, and the frozen [`ObsReport`] with its JSONL
//!   timeline exporter.
//! * [`export`] — Prometheus text-format rendering/validation and the
//!   chrome://tracing span serializer.
//!
//! ## Determinism contract
//!
//! Everything recorded through an [`Observer`] is a pure function of
//! simulation state at simulation timestamps: samples are driven by a
//! periodic event on the simulation's global lane, and the registry iterates
//! in key order. Two runs of the same configuration produce byte-identical
//! Prometheus snapshots and JSONL timelines regardless of executor mode or
//! thread count. Wall-clock profiling lives in `simkit::executor`, entirely
//! outside this crate's event-driven state.

pub mod export;
pub mod hist;
pub mod log;
pub mod observer;
pub mod registry;
pub mod series;

pub use export::{chrome_trace_json, validate_prometheus, SpanArgs, TraceSpan};
pub use hist::Histogram;
pub use log::{EventLog, LogRecord, Severity};
pub use observer::{ObsConfig, ObsReport, Observer, TimelineRecord};
pub use registry::{Key, Label, MetricValue, Registry};
pub use series::{SampleRecord, SampleRing, ServerSample};
