//! Metrics registry: counters, gauges and histograms keyed by
//! `(subsystem, name, label)`.
//!
//! Keys are `&'static str` pairs plus a small copyable [`Label`], so the hot
//! increment path performs no allocation; lookup is a `BTreeMap` walk, which
//! also gives the registry a stable, deterministic iteration order — the
//! Prometheus snapshot is byte-identical for identical simulations regardless
//! of execution mode or thread count.
//!
//! The registry is plain owned state (no interior mutability, no globals),
//! matching simkit's determinism rules: whoever owns the world owns its
//! metrics.

use crate::hist::Histogram;
use serde::Serialize;
use std::collections::BTreeMap;

/// A metric label: nothing, a node ordinal, a static string, or a tenant id.
///
/// Copyable and allocation-free so call sites can pass labels unconditionally
/// even when observability is disabled. New variants go at the end: `Ord`
/// on this enum orders registry keys, and the Prometheus snapshot's line
/// order is part of the deterministic surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Label {
    /// Unlabelled (a single global series).
    None,
    /// Keyed by a node/server ordinal.
    Node(usize),
    /// Keyed by a static string (scheme name, fault kind, ...).
    Str(&'static str),
    /// Keyed by a tenant id (multi-tenant SLO/fairness series).
    Tenant(usize),
    /// Keyed by a contention-control policy name (decision counters of the
    /// policy arena). Appended at the enum end: registry iteration order is
    /// the derived `Ord`, and exporters pin it.
    Policy(&'static str),
}

impl Label {
    /// Render as a Prometheus label block (`{node="3"}`), empty for `None`.
    fn prom(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Node(n) => format!("{{node=\"{n}\"}}"),
            Label::Str(s) => format!("{{label=\"{s}\"}}"),
            Label::Tenant(t) => format!("{{tenant=\"{t}\"}}"),
            Label::Policy(p) => format!("{{policy=\"{p}\"}}"),
        }
    }

    /// Render with an extra leading label pair, for histogram `_bucket` rows.
    fn prom_with(&self, extra: &str) -> String {
        match self {
            Label::None => format!("{{{extra}}}"),
            Label::Node(n) => format!("{{node=\"{n}\",{extra}}}"),
            Label::Str(s) => format!("{{label=\"{s}\",{extra}}}"),
            Label::Tenant(t) => format!("{{tenant=\"{t}\",{extra}}}"),
            Label::Policy(p) => format!("{{policy=\"{p}\",{extra}}}"),
        }
    }
}

/// Full metric key: subsystem, metric name, label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Key {
    /// Owning subsystem (e.g. `"server"`, `"control"`).
    pub subsystem: &'static str,
    /// Metric name within the subsystem (e.g. `"kernels_started"`).
    pub name: &'static str,
    /// Series label.
    pub label: Label,
}

/// One registered metric.
#[derive(Debug, Clone, Serialize)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
}

/// Deterministic metrics registry.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Registry {
    metrics: BTreeMap<Key, MetricValue>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn key(subsystem: &'static str, name: &'static str, label: Label) -> Key {
        Key {
            subsystem,
            name,
            label,
        }
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, subsystem: &'static str, name: &'static str, label: Label) {
        self.add(subsystem, name, label, 1);
    }

    /// Increment a counter by `by`.
    pub fn add(&mut self, subsystem: &'static str, name: &'static str, label: Label, by: u64) {
        match self
            .metrics
            .entry(Self::key(subsystem, name, label))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += by,
            other => panic!("metric {subsystem}/{name} is not a counter: {other:?}"),
        }
    }

    /// Set a gauge to `v`.
    pub fn set_gauge(&mut self, subsystem: &'static str, name: &'static str, label: Label, v: f64) {
        match self
            .metrics
            .entry(Self::key(subsystem, name, label))
            .or_insert(MetricValue::Gauge(0.0))
        {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("metric {subsystem}/{name} is not a gauge: {other:?}"),
        }
    }

    /// Record one observation into a histogram (created with
    /// [`Histogram::latency_default`] bounds on first use).
    pub fn observe(&mut self, subsystem: &'static str, name: &'static str, label: Label, v: f64) {
        match self
            .metrics
            .entry(Self::key(subsystem, name, label))
            .or_insert_with(|| MetricValue::Histogram(Histogram::latency_default()))
        {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!("metric {subsystem}/{name} is not a histogram: {other:?}"),
        }
    }

    /// Look up a metric (tests and exporters).
    pub fn get(
        &self,
        subsystem: &'static str,
        name: &'static str,
        label: Label,
    ) -> Option<&MetricValue> {
        self.metrics.get(&Self::key(subsystem, name, label))
    }

    /// Counter value, or 0 when absent.
    pub fn counter_value(&self, subsystem: &'static str, name: &'static str, label: Label) -> u64 {
        match self.get(subsystem, name, label) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate all series in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &MetricValue)> {
        self.metrics.iter()
    }

    /// Render a Prometheus text-format snapshot.
    ///
    /// Counters are suffixed `_total`; histograms expand into
    /// `_bucket{le=...}` / `_sum` / `_count` series. One `# TYPE` comment is
    /// emitted per distinct metric name. Output order is the registry's
    /// deterministic key order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last: Option<(&str, &str)> = None;
        for (k, v) in &self.metrics {
            let base = format!("dosas_{}_{}", k.subsystem, k.name);
            if last != Some((k.subsystem, k.name)) {
                let ty = match v {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let shown = match v {
                    MetricValue::Counter(_) => format!("{base}_total"),
                    _ => base.clone(),
                };
                out.push_str(&format!("# TYPE {shown} {ty}\n"));
                last = Some((k.subsystem, k.name));
            }
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{base}_total{} {c}\n", k.label.prom()));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{base}{} {g}\n", k.label.prom()));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, c) in h.counts().iter().enumerate() {
                        cum += c;
                        let le = if i < h.bounds().len() {
                            format!("{}", h.bounds()[i])
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!(
                            "{base}_bucket{} {cum}\n",
                            k.label.prom_with(&format!("le=\"{le}\""))
                        ));
                    }
                    out.push_str(&format!("{base}_sum{} {}\n", k.label.prom(), h.sum()));
                    out.push_str(&format!("{base}_count{} {}\n", k.label.prom(), h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.inc("server", "kernels_started", Label::Node(2));
        r.add("server", "kernels_started", Label::Node(2), 4);
        r.set_gauge("net", "tx_util", Label::None, 0.75);
        assert_eq!(
            r.counter_value("server", "kernels_started", Label::Node(2)),
            5
        );
        assert_eq!(
            r.counter_value("server", "kernels_started", Label::Node(3)),
            0
        );
        assert!(matches!(
            r.get("net", "tx_util", Label::None),
            Some(MetricValue::Gauge(g)) if *g == 0.75
        ));
    }

    #[test]
    fn prometheus_snapshot_shape() {
        let mut r = Registry::new();
        r.inc("io", "requests", Label::Node(0));
        r.inc("io", "requests", Label::Node(1));
        r.set_gauge("io", "queue_depth", Label::Node(0), 3.0);
        r.observe("io", "latency_seconds", Label::None, 0.004);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE dosas_io_requests_total counter"));
        assert!(text.contains("dosas_io_requests_total{node=\"0\"} 1"));
        assert!(text.contains("dosas_io_requests_total{node=\"1\"} 1"));
        assert!(text.contains("dosas_io_queue_depth{node=\"0\"} 3"));
        assert!(text.contains("dosas_io_latency_seconds_bucket"));
        assert!(text.contains("dosas_io_latency_seconds_count 1"));
        // One TYPE line per metric name.
        assert_eq!(text.matches("# TYPE dosas_io_requests_total").count(), 1);
    }

    #[test]
    fn deterministic_order() {
        let build = |order_flip: bool| {
            let mut r = Registry::new();
            if order_flip {
                r.inc("b", "y", Label::None);
                r.inc("a", "x", Label::None);
            } else {
                r.inc("a", "x", Label::None);
                r.inc("b", "y", Label::None);
            }
            r.to_prometheus()
        };
        assert_eq!(build(false), build(true));
    }
}
