//! Exporters and format checkers.
//!
//! * [`validate_prometheus`] — a small line-format checker for Prometheus
//!   text exposition, used by the verify smoke test to prove the snapshot a
//!   run emits actually parses.
//! * [`TraceSpan`] / [`chrome_trace_json`] — the chrome://tracing
//!   (trace-event format) exporter; the driver's legacy `trace` path
//!   delegates here so there is exactly one serializer for `trace.json`.

use serde::Serialize;

/// Optional key/value annotations attached to a span (`args` in the
/// trace-event format; shown by Perfetto in the span detail pane).
#[derive(Debug, Clone, Default, Serialize)]
pub struct SpanArgs {
    /// Tenant of the issuing rank, when the workload is tenanted.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub tenant: Option<usize>,
    /// Active contention-control policy, when one is enabled.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub policy: Option<String>,
    /// Contention wait inside the span, microseconds.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub wait_us: Option<f64>,
    /// Wait-cause tag (e.g. `disk-queue`), when `wait_us` is attributed.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cause: Option<String>,
}

/// One complete ("ph": "X") span in the chrome trace-event format.
///
/// Times are microseconds, per the format; `pid` groups tracks (we use the
/// storage-node ordinal) and `tid` separates concurrent spans on a node.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSpan {
    /// Span name shown in the viewer.
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Phase: always `"X"` (complete span).
    pub ph: &'static str,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id (storage-node ordinal).
    pub pid: usize,
    /// Thread id (per-node track).
    pub tid: u64,
    /// Optional annotations (tenant, policy, attributed wait).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub args: Option<SpanArgs>,
}

impl TraceSpan {
    /// Build a complete span; `ts`/`dur` in microseconds.
    pub fn complete(name: String, cat: String, ts: f64, dur: f64, pid: usize, tid: u64) -> Self {
        TraceSpan {
            name,
            cat,
            ph: "X",
            ts,
            dur,
            pid,
            tid,
            args: None,
        }
    }

    /// Attach annotations (builder style).
    pub fn with_args(mut self, args: Option<SpanArgs>) -> Self {
        self.args = args;
        self
    }
}

/// Serialize spans as a chrome://tracing JSON array.
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    serde_json::to_string_pretty(&spans.to_vec()).expect("trace spans serialize")
}

/// Validate Prometheus text-format exposition; returns the number of sample
/// lines on success, or a description of the first malformed line.
///
/// This is intentionally a light-weight structural check (the subset the
/// registry emits): comment lines must be `# TYPE`/`# HELP`, sample lines
/// must be `name[{label="value",...}] <float>` with metric-name characters
/// restricted to `[a-zA-Z0-9_:]`.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ")) {
                return Err(format!("line {}: unknown comment {line:?}", ln + 1));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator in {line:?}", ln + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: bad value {value:?}", ln + 1))?;
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels in {series:?}", ln + 1))?;
                for pair in labels.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label pair {pair:?}", ln + 1))?;
                    if k.is_empty() || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                        return Err(format!("line {}: bad label name {k:?}", ln + 1));
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(format!("line {}: unquoted label value {v:?}", ln + 1));
                    }
                }
                name
            }
            None => series,
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name {name:?}", ln + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Label, Registry};

    #[test]
    fn registry_snapshot_validates() {
        let mut r = Registry::new();
        r.inc("io", "requests", Label::Node(0));
        r.set_gauge("net", "util", Label::None, 0.25);
        r.observe("io", "latency_seconds", Label::Node(1), 0.002);
        let text = r.to_prometheus();
        let n = validate_prometheus(&text).expect("snapshot must validate");
        assert!(n > 3, "expected bucket lines, got {n} samples");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate_prometheus("metric{node=\"0\" 1").is_err());
        assert!(validate_prometheus("metric nope").is_err());
        assert!(validate_prometheus("bad name 1").is_err());
        assert!(validate_prometheus("# BOGUS comment").is_err());
        assert!(validate_prometheus("m{k=v} 1").is_err());
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = vec![TraceSpan::complete(
            "kernel(sum)".into(),
            "cpu".into(),
            10.0,
            5.5,
            3,
            1,
        )];
        let json = chrome_trace_json(&spans);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let row = &v.as_array().unwrap()[0];
        assert_eq!(row["ph"], "X");
        assert_eq!(row["pid"], 3);
        assert_eq!(row["name"], "kernel(sum)");
    }
}
