//! Structured, ring-buffered event log.
//!
//! Every record carries a monotone sequence number, the simulation time it
//! was emitted at, a severity, the owning subsystem and a free-form message.
//! The log is bounded: when full, the oldest record is dropped and a drop
//! counter incremented, so long runs degrade gracefully instead of growing
//! without bound. Records serialize as JSONL via the timeline exporter and
//! round-trip through serde.

use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::collections::VecDeque;

/// Log severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Fine-grained diagnostic detail.
    Debug,
    /// Normal operational milestones.
    Info,
    /// Degraded-but-recovering conditions (probe loss, faults, fallbacks).
    Warn,
    /// Unrecoverable subsystem failures.
    Error,
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Global emission order (shared with samples, so the timeline merges
    /// deterministically).
    pub seq: u64,
    /// Simulation time of emission.
    pub t: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Emitting subsystem (e.g. `"control"`, `"faults"`).
    pub subsystem: String,
    /// Node ordinal when the record concerns one server.
    #[serde(default)]
    pub node: Option<usize>,
    /// Human-readable message.
    pub message: String,
}

/// Bounded ring buffer of [`LogRecord`]s with a drop counter.
#[derive(Debug, Clone)]
pub struct EventLog {
    cap: usize,
    records: VecDeque<LogRecord>,
    dropped: u64,
}

impl EventLog {
    /// New log holding at most `cap` records (`cap == 0` drops everything).
    pub fn new(cap: usize) -> Self {
        EventLog {
            cap,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, rec: LogRecord) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &LogRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted or rejected so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the log, returning retained records and the drop count.
    pub fn into_parts(self) -> (Vec<LogRecord>, u64) {
        (self.records.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> LogRecord {
        LogRecord {
            seq,
            t: SimTime::from_nanos(seq * 10),
            severity: Severity::Info,
            subsystem: "test".into(),
            node: Some(1),
            message: format!("event {seq}"),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = EventLog::new(3);
        for s in 0..5 {
            log.push(rec(s));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn record_roundtrips_through_serde() {
        let r = rec(7);
        let json = serde_json::to_string(&r).unwrap();
        let back: LogRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
    }
}
