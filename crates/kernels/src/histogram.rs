//! Byte-histogram kernel: 256-bin frequency count.
//!
//! Frequency analysis over raw bytes — the cheapest possible data-reduction
//! kernel after SUM, useful as an extra point on the computation-complexity
//! axis (paper §IV-B1 studies how complexity moves the AS/TS crossover).

use crate::kernel::{Complexity, Kernel, KernelError, KernelState, VarValue};

pub const OP_NAME: &str = "histogram";

/// Streaming 256-bin byte histogram.
#[derive(Debug, Clone)]
pub struct HistogramKernel {
    bins: Vec<u64>,
    bytes: u64,
}

impl Default for HistogramKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramKernel {
    pub fn new() -> Self {
        HistogramKernel {
            bins: vec![0; 256],
            bytes: 0,
        }
    }

    pub fn from_state(state: &KernelState) -> Result<Self, KernelError> {
        if state.op != OP_NAME {
            return Err(KernelError::WrongOp {
                expected: OP_NAME.into(),
                found: state.op.clone(),
            });
        }
        let bins = state.get_u64_vec("bins")?.to_vec();
        if bins.len() != 256 {
            return Err(KernelError::BadParams(format!(
                "histogram checkpoint has {} bins, want 256",
                bins.len()
            )));
        }
        Ok(HistogramKernel {
            bins,
            bytes: state.get_u64("bytes")?,
        })
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    pub fn decode_result(bytes: &[u8]) -> Option<Vec<u64>> {
        if bytes.len() != 256 * 8 {
            return None;
        }
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }
}

impl Kernel for HistogramKernel {
    fn op_name(&self) -> &str {
        OP_NAME
    }

    fn process_chunk(&mut self, chunk: &[u8]) {
        self.bytes += chunk.len() as u64;
        for &b in chunk {
            self.bins[b as usize] += 1;
        }
    }

    fn finalize(&self) -> Vec<u8> {
        self.bins.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn checkpoint(&self) -> KernelState {
        let mut s = KernelState::new(OP_NAME);
        s.push("bins", VarValue::U64Vec(self.bins.clone()));
        s.push("bytes", VarValue::U64(self.bytes));
        s
    }

    fn result_size(&self, _input_bytes: u64) -> u64 {
        256 * 8
    }

    fn complexity(&self) -> Complexity {
        Complexity {
            muls_per_item: 0,
            adds_per_item: 1,
            divs_per_item: 0,
            item_bytes: 1,
        }
    }

    fn bytes_processed(&self) -> u64 {
        self.bytes
    }
}

impl crate::parallel::Merge for HistogramKernel {
    fn merge(&mut self, other: Self) {
        for (a, b) in self.bins.iter_mut().zip(other.bins) {
            *a += b;
        }
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_byte_frequencies() {
        let mut k = HistogramKernel::new();
        k.process_chunk(&[0, 1, 1, 255, 255, 255]);
        assert_eq!(k.bins()[0], 1);
        assert_eq!(k.bins()[1], 2);
        assert_eq!(k.bins()[255], 3);
        assert_eq!(k.bytes_processed(), 6);
    }

    #[test]
    fn result_roundtrip() {
        let mut k = HistogramKernel::new();
        k.process_chunk(b"hello");
        let bins = HistogramKernel::decode_result(&k.finalize()).unwrap();
        assert_eq!(bins[b'l' as usize], 2);
        assert_eq!(bins.iter().sum::<u64>(), 5);
    }

    #[test]
    fn checkpoint_restore_equivalence() {
        let data: Vec<u8> = (0..=255).cycle().take(1000).collect();
        let mut whole = HistogramKernel::new();
        whole.process_chunk(&data);
        let mut a = HistogramKernel::new();
        a.process_chunk(&data[..333]);
        let mut b = HistogramKernel::from_state(&a.checkpoint()).unwrap();
        b.process_chunk(&data[333..]);
        assert_eq!(whole.finalize(), b.finalize());
    }

    #[test]
    fn bad_checkpoint_rejected() {
        let mut s = KernelState::new(OP_NAME);
        s.push("bins", VarValue::U64Vec(vec![0; 10]));
        s.push("bytes", VarValue::U64(0));
        assert!(matches!(
            HistogramKernel::from_state(&s),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn result_size_fixed() {
        assert_eq!(HistogramKernel::new().result_size(1 << 30), 2048);
    }
}
