//! The kernel abstraction and the checkpoint format.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed variable value inside a kernel checkpoint.
///
/// The paper's kernels write their status to shared memory as
/// `⟨variable name, variable type, value⟩` records; this enum is the `value`
/// with the `type` made explicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VarValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bytes(Vec<u8>),
    F64Vec(Vec<f64>),
    U64Vec(Vec<u64>),
}

impl VarValue {
    pub fn type_name(&self) -> &'static str {
        match self {
            VarValue::U64(_) => "u64",
            VarValue::I64(_) => "i64",
            VarValue::F64(_) => "f64",
            VarValue::Str(_) => "str",
            VarValue::Bytes(_) => "bytes",
            VarValue::F64Vec(_) => "f64[]",
            VarValue::U64Vec(_) => "u64[]",
        }
    }

    /// Bytes this value occupies when shipped with an interrupted request.
    pub fn wire_size(&self) -> u64 {
        match self {
            VarValue::U64(_) | VarValue::I64(_) | VarValue::F64(_) => 8,
            VarValue::Str(s) => s.len() as u64,
            VarValue::Bytes(b) => b.len() as u64,
            VarValue::F64Vec(v) => 8 * v.len() as u64,
            VarValue::U64Vec(v) => 8 * v.len() as u64,
        }
    }
}

/// One `⟨name, type, value⟩` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarRecord {
    pub name: String,
    pub type_name: String,
    pub value: VarValue,
}

impl VarRecord {
    pub fn new(name: &str, value: VarValue) -> Self {
        VarRecord {
            name: name.to_string(),
            type_name: value.type_name().to_string(),
            value,
        }
    }
}

/// A serialized kernel: the op name plus every live variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelState {
    pub op: String,
    pub vars: Vec<VarRecord>,
}

impl KernelState {
    pub fn new(op: &str) -> Self {
        KernelState {
            op: op.to_string(),
            vars: Vec::new(),
        }
    }

    pub fn push(&mut self, name: &str, value: VarValue) {
        self.vars.push(VarRecord::new(name, value));
    }

    pub fn get(&self, name: &str) -> Option<&VarValue> {
        self.vars.iter().find(|v| v.name == name).map(|v| &v.value)
    }

    pub fn get_u64(&self, name: &str) -> Result<u64, KernelError> {
        match self.get(name) {
            Some(VarValue::U64(v)) => Ok(*v),
            Some(other) => Err(KernelError::TypeMismatch {
                var: name.to_string(),
                expected: "u64",
                found: other.type_name(),
            }),
            None => Err(KernelError::MissingVar(name.to_string())),
        }
    }

    pub fn get_f64(&self, name: &str) -> Result<f64, KernelError> {
        match self.get(name) {
            Some(VarValue::F64(v)) => Ok(*v),
            Some(other) => Err(KernelError::TypeMismatch {
                var: name.to_string(),
                expected: "f64",
                found: other.type_name(),
            }),
            None => Err(KernelError::MissingVar(name.to_string())),
        }
    }

    pub fn get_str(&self, name: &str) -> Result<&str, KernelError> {
        match self.get(name) {
            Some(VarValue::Str(v)) => Ok(v),
            Some(other) => Err(KernelError::TypeMismatch {
                var: name.to_string(),
                expected: "str",
                found: other.type_name(),
            }),
            None => Err(KernelError::MissingVar(name.to_string())),
        }
    }

    pub fn get_bytes(&self, name: &str) -> Result<&[u8], KernelError> {
        match self.get(name) {
            Some(VarValue::Bytes(v)) => Ok(v),
            Some(other) => Err(KernelError::TypeMismatch {
                var: name.to_string(),
                expected: "bytes",
                found: other.type_name(),
            }),
            None => Err(KernelError::MissingVar(name.to_string())),
        }
    }

    pub fn get_f64_vec(&self, name: &str) -> Result<&[f64], KernelError> {
        match self.get(name) {
            Some(VarValue::F64Vec(v)) => Ok(v),
            Some(other) => Err(KernelError::TypeMismatch {
                var: name.to_string(),
                expected: "f64[]",
                found: other.type_name(),
            }),
            None => Err(KernelError::MissingVar(name.to_string())),
        }
    }

    pub fn get_u64_vec(&self, name: &str) -> Result<&[u64], KernelError> {
        match self.get(name) {
            Some(VarValue::U64Vec(v)) => Ok(v),
            Some(other) => Err(KernelError::TypeMismatch {
                var: name.to_string(),
                expected: "u64[]",
                found: other.type_name(),
            }),
            None => Err(KernelError::MissingVar(name.to_string())),
        }
    }

    /// Bytes this checkpoint occupies on the wire (shipped alongside the
    /// residual data when a kernel migrates to the client).
    pub fn wire_size(&self) -> u64 {
        self.vars
            .iter()
            .map(|v| v.name.len() as u64 + 8 + v.value.wire_size())
            .sum()
    }
}

/// Per-item arithmetic cost, as the paper's Table III describes kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Complexity {
    pub muls_per_item: u32,
    pub adds_per_item: u32,
    pub divs_per_item: u32,
    /// Bytes per logical data item (8 for f64 streams, 4 for f32 pixels…).
    pub item_bytes: u32,
}

impl Complexity {
    pub fn total_ops_per_item(&self) -> u32 {
        self.muls_per_item + self.adds_per_item + self.divs_per_item
    }

    /// Arithmetic operations per byte of input.
    pub fn ops_per_byte(&self) -> f64 {
        self.total_ops_per_item() as f64 / self.item_bytes as f64
    }
}

/// Errors from kernel construction, restore or parameter handling.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    MissingVar(String),
    TypeMismatch {
        var: String,
        expected: &'static str,
        found: &'static str,
    },
    BadParams(String),
    UnknownOp(String),
    WrongOp {
        expected: String,
        found: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::MissingVar(v) => write!(f, "checkpoint missing variable {v}"),
            KernelError::TypeMismatch {
                var,
                expected,
                found,
            } => write!(f, "variable {var}: expected {expected}, found {found}"),
            KernelError::BadParams(msg) => write!(f, "bad kernel parameters: {msg}"),
            KernelError::UnknownOp(op) => write!(f, "unknown operation: {op}"),
            KernelError::WrongOp { expected, found } => {
                write!(f, "checkpoint is for op {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// A streaming, checkpointable analysis kernel.
///
/// Contract:
/// * `process_chunk` may be called with *any* byte chunking of the input;
///   the final result must not depend on chunk boundaries.
/// * `checkpoint()` after processing a prefix, followed by a registry
///   `restore` and processing the suffix, must equal processing the whole
///   input in one kernel instance.
pub trait Kernel: Send {
    /// The operation name applications pass to `MPI_File_read_ex`.
    fn op_name(&self) -> &str;

    /// Consume the next chunk of input bytes.
    fn process_chunk(&mut self, chunk: &[u8]);

    /// Produce the result bytes. Idempotent.
    fn finalize(&self) -> Vec<u8>;

    /// Serialize all live variables (the paper's shared-memory records).
    fn checkpoint(&self) -> KernelState;

    /// Size in bytes of the result for `input_bytes` of input — the paper's
    /// `h(x)` for this operation.
    fn result_size(&self, input_bytes: u64) -> u64;

    /// Arithmetic cost per item, for documentation and rate modelling.
    fn complexity(&self) -> Complexity;

    /// Total bytes consumed so far (used to account interrupted progress).
    fn bytes_processed(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_record_captures_type_name() {
        let r = VarRecord::new("sum", VarValue::F64(1.5));
        assert_eq!(r.type_name, "f64");
        assert_eq!(r.name, "sum");
    }

    #[test]
    fn state_typed_getters() {
        let mut s = KernelState::new("sum");
        s.push("count", VarValue::U64(7));
        s.push("sum", VarValue::F64(2.5));
        s.push("tag", VarValue::Str("x".into()));
        s.push("carry", VarValue::Bytes(vec![1, 2]));
        s.push("centroids", VarValue::F64Vec(vec![0.0, 1.0]));
        s.push("bins", VarValue::U64Vec(vec![3, 4]));
        assert_eq!(s.get_u64("count").unwrap(), 7);
        assert_eq!(s.get_f64("sum").unwrap(), 2.5);
        assert_eq!(s.get_str("tag").unwrap(), "x");
        assert_eq!(s.get_bytes("carry").unwrap(), &[1, 2]);
        assert_eq!(s.get_f64_vec("centroids").unwrap(), &[0.0, 1.0]);
        assert_eq!(s.get_u64_vec("bins").unwrap(), &[3, 4]);
    }

    #[test]
    fn state_getter_errors() {
        let mut s = KernelState::new("sum");
        s.push("count", VarValue::U64(7));
        assert_eq!(
            s.get_f64("count"),
            Err(KernelError::TypeMismatch {
                var: "count".into(),
                expected: "f64",
                found: "u64"
            })
        );
        assert_eq!(
            s.get_u64("missing"),
            Err(KernelError::MissingVar("missing".into()))
        );
    }

    #[test]
    fn wire_size_counts_payload() {
        let mut s = KernelState::new("sum");
        s.push("sum", VarValue::F64(0.0)); // 3 + 8 + 8
        s.push("carry", VarValue::Bytes(vec![0; 5])); // 5 + 8 + 5
        assert_eq!(s.wire_size(), (3 + 8 + 8) + (5 + 8 + 5));
    }

    #[test]
    fn complexity_ops_per_byte() {
        // The paper's Gaussian: 9 mul + 9 add + 1 div on f32 items.
        let c = Complexity {
            muls_per_item: 9,
            adds_per_item: 9,
            divs_per_item: 1,
            item_bytes: 4,
        };
        assert_eq!(c.total_ops_per_item(), 19);
        assert!((c.ops_per_byte() - 4.75).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert!(KernelError::UnknownOp("zip".into())
            .to_string()
            .contains("zip"));
        assert!(KernelError::WrongOp {
            expected: "sum".into(),
            found: "grep".into()
        }
        .to_string()
        .contains("grep"));
    }

    #[test]
    fn state_serde_roundtrip() {
        let mut s = KernelState::new("stats");
        s.push("n", VarValue::U64(3));
        s.push("mean", VarValue::F64(1.0));
        let json = serde_json::to_string(&s).unwrap();
        let back: KernelState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
