//! # kernels — real, checkpointable processing kernels
//!
//! The DOSAS "Processing Kernels" component (paper §III-E): a collection of
//! predefined analysis kernels widely used in data-intensive applications,
//! deployed **both at storage nodes and compute nodes** so an active I/O can
//! be finished on either side.
//!
//! Two properties drive the design:
//!
//! 1. **Streaming** — kernels consume arbitrary byte chunks
//!    ([`Kernel::process_chunk`]), because data arrives from disk/network in
//!    pieces and because chunking is what makes mid-request interruption
//!    meaningful.
//! 2. **Checkpointability** — when the Active I/O Runtime interrupts a
//!    kernel, the kernel writes its status as `⟨variable name, variable
//!    type, value⟩` records ([`KernelState`]), exactly the paper's shared-
//!    memory protocol; the client-side twin is restored from those records
//!    and continues where the storage side stopped.
//!
//! Provided kernels (paper Table III plus the usual active-storage suite):
//!
//! | op | data | per-item work | result |
//! |----|------|----------------|--------|
//! | [`sum`] | f64 stream | 1 add | sum + count |
//! | [`gaussian`] | f32 image rows | 9 mul + 9 add + 1 div | digest or image |
//! | [`stats`] | f64 stream | ~4 flops | min/max/mean/var/count |
//! | [`grep`] | bytes | ~1 cmp | match count |
//! | [`histogram`] | bytes | 1 index | 256 bins |
//! | [`kmeans`] | f64 stream | ~3k flops | centroids + counts |
//! | [`smooth`] | f64 stream | 2 add + 1 div | smoothed-stream digest |
//!
//! All kernels are *really executed* (this crate is the data plane);
//! [`calibrate`] measures their per-core MB/s for Table III, and
//! [`parallel`] runs mergeable kernels across cores with rayon.

mod itemstream;

pub mod calibrate;
pub mod gaussian;
pub mod grep;
pub mod histogram;
pub mod kernel;
pub mod kmeans;
pub mod parallel;
pub mod registry;
pub mod smooth;
pub mod stats;
pub mod sum;

pub use calibrate::{measure_rate, CalibrationReport};
pub use gaussian::{GaussianFilter2D, GaussianOutput};
pub use grep::GrepKernel;
pub use histogram::HistogramKernel;
pub use kernel::{Complexity, Kernel, KernelError, KernelState, VarRecord, VarValue};
pub use kmeans::KMeansKernel;
pub use registry::{KernelParams, KernelRegistry};
pub use smooth::SmoothKernel;
pub use stats::StatsKernel;
pub use sum::SumKernel;
