//! Rayon-parallel execution of mergeable kernels.
//!
//! Reduction kernels (sum, stats, histogram, kmeans) are associative: the
//! input can be split at item boundaries, processed on independent cores and
//! the partial states merged. This is how the client side exploits all its
//! cores when an active I/O is demoted, and how [`crate::calibrate`]
//! measures multi-core rates.
//!
//! The Gaussian filter is *not* chunk-mergeable (each output row needs halo
//! rows), and grep needs boundary stitching — see [`crate::grep`]'s
//! dedicated [`par_count`](crate::grep::GrepKernel) helper below.

use crate::grep::count_occurrences;
use crate::kernel::Kernel;
use rayon::prelude::*;

/// Kernels whose partial states combine associatively.
pub trait Merge: Sized {
    /// Fold `other`'s accumulated state into `self`.
    ///
    /// Both kernels must have consumed item-aligned inputs (no pending
    /// partial item), which `par_process` guarantees.
    fn merge(&mut self, other: Self);
}

/// Process `data` in parallel with one kernel instance per rayon task and
/// merge the partials. `chunk_bytes` must be a multiple of the kernel's item
/// size so no task ends mid-item.
pub fn par_process<K, F>(make: F, data: &[u8], chunk_bytes: usize) -> K
where
    K: Kernel + Merge + Send,
    F: Fn() -> K + Sync + Send,
{
    let proto = make();
    let item = proto.complexity().item_bytes as usize;
    assert!(
        chunk_bytes > 0 && chunk_bytes.is_multiple_of(item),
        "chunk_bytes {chunk_bytes} must be a positive multiple of the item size {item}"
    );
    assert!(
        data.len().is_multiple_of(item),
        "input length {} is not item-aligned (item size {item})",
        data.len()
    );

    data.par_chunks(chunk_bytes)
        .map(|chunk| {
            let mut k = make();
            k.process_chunk(chunk);
            k
        })
        .reduce_with(|mut a, b| {
            a.merge(b);
            a
        })
        .unwrap_or(proto)
}

/// Count overlapping pattern occurrences in parallel: per-chunk counts plus
/// a stitch pass over each chunk boundary.
pub fn par_grep_count(data: &[u8], pattern: &[u8], chunk_bytes: usize) -> u64 {
    assert!(!pattern.is_empty());
    assert!(
        chunk_bytes >= pattern.len(),
        "chunks must hold at least one pattern"
    );
    let m = pattern.len();
    let local: u64 = data
        .par_chunks(chunk_bytes)
        .map(|c| count_occurrences(c, pattern))
        .sum();
    // Matches that span a boundary start within m-1 bytes before it.
    let mut spanning = 0u64;
    let mut b = chunk_bytes;
    while b < data.len() {
        let lo = b.saturating_sub(m - 1);
        let hi = (b + m - 1).min(data.len());
        let window = &data[lo..hi];
        if window.len() >= m {
            for i in 0..=window.len() - m {
                let (start, end) = (lo + i, lo + i + m);
                if start < b && end > b && &data[start..end] == pattern {
                    spanning += 1;
                }
            }
        }
        b += chunk_bytes;
    }
    local + spanning
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramKernel;
    use crate::kmeans::KMeansKernel;
    use crate::stats::StatsKernel;
    use crate::sum::SumKernel;

    fn encode(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn parallel_sum_equals_sequential() {
        let vals: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let data = encode(&vals);
        let par = par_process(SumKernel::new, &data, 1024);
        let mut seq = SumKernel::new();
        seq.process_chunk(&data);
        let (ps, pc) = SumKernel::decode_result(&par.finalize()).unwrap();
        let (ss, sc) = SumKernel::decode_result(&seq.finalize()).unwrap();
        assert_eq!(pc, sc);
        assert!((ps - ss).abs() < 1e-6 * ss.abs().max(1.0));
    }

    #[test]
    fn parallel_stats_equals_sequential() {
        let vals: Vec<f64> = (0..5_000).map(|i| ((i * 37) % 101) as f64).collect();
        let data = encode(&vals);
        let par = par_process(StatsKernel::new, &data, 800);
        let mut seq = StatsKernel::new();
        seq.process_chunk(&data);
        let p = StatsKernel::decode_result(&par.finalize()).unwrap();
        let s = StatsKernel::decode_result(&seq.finalize()).unwrap();
        assert_eq!(p.0, s.0); // min
        assert_eq!(p.1, s.1); // max
        assert!((p.2 - s.2).abs() < 1e-9);
        assert!((p.3 - s.3).abs() < 1e-6 * s.3.max(1.0));
        assert_eq!(p.4, s.4); // count
    }

    #[test]
    fn parallel_histogram_equals_sequential() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let par = par_process(HistogramKernel::new, &data, 4096);
        let mut seq = HistogramKernel::new();
        seq.process_chunk(&data);
        assert_eq!(par.finalize(), seq.finalize());
    }

    #[test]
    fn parallel_kmeans_equals_sequential() {
        let vals: Vec<f64> = (0..4_000).map(|i| (i % 100) as f64).collect();
        let data = encode(&vals);
        let make = || KMeansKernel::new(vec![10.0, 50.0, 90.0]).unwrap();
        let par = par_process(make, &data, 1600);
        let mut seq = make();
        seq.process_chunk(&data);
        assert_eq!(par.finalize(), seq.finalize());
    }

    #[test]
    fn empty_input_yields_fresh_kernel() {
        let k = par_process(SumKernel::new, &[], 8);
        assert_eq!(SumKernel::decode_result(&k.finalize()), Some((0.0, 0)));
    }

    #[test]
    #[should_panic(expected = "multiple of the item size")]
    fn misaligned_chunk_rejected() {
        let data = encode(&[1.0, 2.0]);
        let _ = par_process(SumKernel::new, &data, 7);
    }

    #[test]
    fn par_grep_counts_spanning_matches() {
        // Pattern straddles the 8-byte chunk boundary.
        let data = b"xxxxxxhello-yyyyhello";
        let seq = count_occurrences(data, b"hello");
        assert_eq!(par_grep_count(data, b"hello", 8), seq);
        assert_eq!(seq, 2);
    }

    #[test]
    fn par_grep_overlapping_pattern() {
        let data = vec![b'a'; 100];
        assert_eq!(par_grep_count(&data, b"aaa", 16), 98);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::grep::count_occurrences;
    use crate::sum::SumKernel;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn par_grep_matches_reference(
            hay in proptest::collection::vec(0u8..3, 0..400),
            pat in proptest::collection::vec(0u8..3, 1..4),
            chunk in 4usize..64,
        ) {
            prop_assume!(chunk >= pat.len());
            prop_assert_eq!(
                par_grep_count(&hay, &pat, chunk),
                count_occurrences(&hay, &pat)
            );
        }

        #[test]
        fn par_sum_matches_reference(
            vals in proptest::collection::vec(-1e3f64..1e3, 0..500),
            chunk_items in 1usize..64,
        ) {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let k = par_process(SumKernel::new, &data, chunk_items * 8);
            let (sum, count) = SumKernel::decode_result(&k.finalize()).unwrap();
            prop_assert_eq!(count, vals.len() as u64);
            let naive: f64 = vals.iter().sum();
            prop_assert!((sum - naive).abs() < 1e-7 * naive.abs().max(1.0));
        }
    }
}
