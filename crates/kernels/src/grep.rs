//! Pattern-count kernel ("grep") — unstructured-data search, the classic
//! active-disk workload (Riedel et al., Acharya et al.).
//!
//! Counts (possibly overlapping) occurrences of a byte pattern in the
//! stream. Across chunk boundaries the kernel keeps the last
//! `pattern.len() - 1` bytes so no match is missed; that window is part of
//! the checkpoint.

use crate::kernel::{Complexity, Kernel, KernelError, KernelState, VarValue};

pub const OP_NAME: &str = "grep";

/// Streaming overlapping-occurrence counter.
#[derive(Debug, Clone)]
pub struct GrepKernel {
    pattern: Vec<u8>,
    /// Last `pattern.len()-1` bytes of the stream so far.
    window: Vec<u8>,
    count: u64,
    bytes: u64,
}

impl GrepKernel {
    pub fn new(pattern: &[u8]) -> Result<Self, KernelError> {
        if pattern.is_empty() {
            return Err(KernelError::BadParams(
                "grep pattern must be non-empty".into(),
            ));
        }
        Ok(GrepKernel {
            pattern: pattern.to_vec(),
            window: Vec::new(),
            count: 0,
            bytes: 0,
        })
    }

    pub fn from_state(state: &KernelState) -> Result<Self, KernelError> {
        if state.op != OP_NAME {
            return Err(KernelError::WrongOp {
                expected: OP_NAME.into(),
                found: state.op.clone(),
            });
        }
        let pattern = state.get_bytes("pattern")?.to_vec();
        if pattern.is_empty() {
            return Err(KernelError::BadParams(
                "checkpoint has empty pattern".into(),
            ));
        }
        Ok(GrepKernel {
            pattern,
            window: state.get_bytes("window")?.to_vec(),
            count: state.get_u64("count")?,
            bytes: state.get_u64("bytes")?,
        })
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn decode_result(bytes: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl Kernel for GrepKernel {
    fn op_name(&self) -> &str {
        OP_NAME
    }

    fn process_chunk(&mut self, chunk: &[u8]) {
        self.bytes += chunk.len() as u64;
        let m = self.pattern.len();
        // Scan window || chunk, but only count matches that *end* inside the
        // new chunk (matches fully inside the window were already counted).
        let mut hay = Vec::with_capacity(self.window.len() + chunk.len());
        hay.extend_from_slice(&self.window);
        hay.extend_from_slice(chunk);
        let first_new_end = self.window.len(); // matches ending before this index are old
        if hay.len() >= m {
            for start in 0..=hay.len() - m {
                let end = start + m; // exclusive
                if end > first_new_end && hay[start..end] == self.pattern[..] {
                    self.count += 1;
                }
            }
        }
        // Keep the last m-1 bytes as the next window.
        let keep = (m - 1).min(hay.len());
        self.window = hay[hay.len() - keep..].to_vec();
    }

    fn finalize(&self) -> Vec<u8> {
        self.count.to_le_bytes().to_vec()
    }

    fn checkpoint(&self) -> KernelState {
        let mut s = KernelState::new(OP_NAME);
        s.push("pattern", VarValue::Bytes(self.pattern.clone()));
        s.push("window", VarValue::Bytes(self.window.clone()));
        s.push("count", VarValue::U64(self.count));
        s.push("bytes", VarValue::U64(self.bytes));
        s
    }

    fn result_size(&self, _input_bytes: u64) -> u64 {
        8
    }

    fn complexity(&self) -> Complexity {
        Complexity {
            muls_per_item: 0,
            adds_per_item: 1,
            divs_per_item: 0,
            item_bytes: 1,
        }
    }

    fn bytes_processed(&self) -> u64 {
        self.bytes
    }
}

/// Count overlapping occurrences of `pattern` in `hay` (reference).
pub fn count_occurrences(hay: &[u8], pattern: &[u8]) -> u64 {
    assert!(!pattern.is_empty());
    if hay.len() < pattern.len() {
        return 0;
    }
    (0..=hay.len() - pattern.len())
        .filter(|&i| &hay[i..i + pattern.len()] == pattern)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_matches() {
        let mut k = GrepKernel::new(b"ab").unwrap();
        k.process_chunk(b"abcabcab");
        assert_eq!(k.count(), 3);
        assert_eq!(GrepKernel::decode_result(&k.finalize()), Some(3));
    }

    #[test]
    fn counts_overlapping_matches() {
        let mut k = GrepKernel::new(b"aa").unwrap();
        k.process_chunk(b"aaaa");
        assert_eq!(k.count(), 3);
        assert_eq!(count_occurrences(b"aaaa", b"aa"), 3);
    }

    #[test]
    fn matches_across_chunk_boundary() {
        let mut k = GrepKernel::new(b"hello").unwrap();
        k.process_chunk(b"xxhel");
        k.process_chunk(b"loyy");
        assert_eq!(k.count(), 1);
    }

    #[test]
    fn no_double_count_at_boundary() {
        // A match entirely within the first chunk must not be re-counted
        // when its bytes reappear in the carry window.
        let mut k = GrepKernel::new(b"ab").unwrap();
        k.process_chunk(b"zab"); // one match
        k.process_chunk(b"zz"); // window was "b": no new match
        assert_eq!(k.count(), 1);
    }

    #[test]
    fn single_byte_pattern() {
        let mut k = GrepKernel::new(b"x").unwrap();
        k.process_chunk(b"axbxc");
        k.process_chunk(b"x");
        assert_eq!(k.count(), 3);
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(GrepKernel::new(b"").is_err());
    }

    #[test]
    fn checkpoint_restore_equivalence() {
        let data = b"the quick brown fox the lazy dog the end";
        let mut whole = GrepKernel::new(b"the").unwrap();
        whole.process_chunk(data);

        let mut a = GrepKernel::new(b"the").unwrap();
        a.process_chunk(&data[..22]);
        let mut b = GrepKernel::from_state(&a.checkpoint()).unwrap();
        b.process_chunk(&data[22..]);
        assert_eq!(whole.count(), b.count());
        assert_eq!(whole.count(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Streaming count equals the reference count under any chunking,
        /// including a checkpoint/restore at an arbitrary position.
        #[test]
        fn matches_reference(
            hay in proptest::collection::vec(0u8..4, 0..300),
            pat in proptest::collection::vec(0u8..4, 1..5),
            cut_frac in 0.0f64..1.0,
        ) {
            let cut = ((hay.len() as f64) * cut_frac) as usize;
            let mut k = GrepKernel::new(&pat).unwrap();
            k.process_chunk(&hay[..cut]);
            let mut k = GrepKernel::from_state(&k.checkpoint()).unwrap();
            k.process_chunk(&hay[cut..]);
            prop_assert_eq!(k.count(), count_occurrences(&hay, &pat));
        }
    }
}
