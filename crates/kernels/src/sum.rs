//! SUM — the paper's low-complexity benchmark kernel (Table III).
//!
//! One addition per f64 data item; the paper measured 860 MB/s per core.
//! Result: the running sum plus the item count (16 bytes), so active I/O
//! replaces a multi-hundred-MB transfer with a constant-size result.

use crate::itemstream::ItemBuf;
use crate::kernel::{Complexity, Kernel, KernelError, KernelState, VarValue};

pub const OP_NAME: &str = "sum";

/// Streaming sum of little-endian f64 items.
#[derive(Debug, Clone, Default)]
pub struct SumKernel {
    sum: f64,
    count: u64,
    buf: ItemBuf,
    bytes: u64,
}

impl SumKernel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild from a checkpoint written by [`Kernel::checkpoint`].
    pub fn from_state(state: &KernelState) -> Result<Self, KernelError> {
        if state.op != OP_NAME {
            return Err(KernelError::WrongOp {
                expected: OP_NAME.into(),
                found: state.op.clone(),
            });
        }
        Ok(SumKernel {
            sum: state.get_f64("sum")?,
            count: state.get_u64("count")?,
            buf: ItemBuf::from_carry(state.get_bytes("carry")?.to_vec()),
            bytes: state.get_u64("bytes")?,
        })
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Decode a result produced by [`Kernel::finalize`].
    pub fn decode_result(bytes: &[u8]) -> Option<(f64, u64)> {
        if bytes.len() != 16 {
            return None;
        }
        let sum = f64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let count = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        Some((sum, count))
    }
}

impl Kernel for SumKernel {
    fn op_name(&self) -> &str {
        OP_NAME
    }

    fn process_chunk(&mut self, chunk: &[u8]) {
        self.bytes += chunk.len() as u64;
        let mut sum = self.sum;
        let mut count = self.count;
        self.buf.feed_f64(chunk, |v| {
            sum += v;
            count += 1;
        });
        self.sum = sum;
        self.count = count;
    }

    fn finalize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out
    }

    fn checkpoint(&self) -> KernelState {
        let mut s = KernelState::new(OP_NAME);
        s.push("sum", VarValue::F64(self.sum));
        s.push("count", VarValue::U64(self.count));
        s.push("carry", VarValue::Bytes(self.buf.carry().to_vec()));
        s.push("bytes", VarValue::U64(self.bytes));
        s
    }

    fn result_size(&self, _input_bytes: u64) -> u64 {
        16
    }

    fn complexity(&self) -> Complexity {
        Complexity {
            muls_per_item: 0,
            adds_per_item: 1,
            divs_per_item: 0,
            item_bytes: 8,
        }
    }

    fn bytes_processed(&self) -> u64 {
        self.bytes
    }
}

impl crate::parallel::Merge for SumKernel {
    fn merge(&mut self, other: Self) {
        debug_assert!(
            self.buf.carry().is_empty() && other.buf.carry().is_empty(),
            "merge requires item-aligned inputs"
        );
        self.sum += other.sum;
        self.count += other.count;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn sums_a_stream() {
        let mut k = SumKernel::new();
        k.process_chunk(&encode(&[1.0, 2.0, 3.5]));
        assert_eq!(k.sum(), 6.5);
        assert_eq!(k.count(), 3);
        assert_eq!(k.bytes_processed(), 24);
        assert_eq!(SumKernel::decode_result(&k.finalize()), Some((6.5, 3)));
    }

    #[test]
    fn chunk_boundaries_do_not_matter() {
        let data = encode(&[1.0, -2.0, 3.0, 4.25]);
        let mut whole = SumKernel::new();
        whole.process_chunk(&data);
        let mut split = SumKernel::new();
        split.process_chunk(&data[..13]);
        split.process_chunk(&data[13..]);
        assert_eq!(whole.finalize(), split.finalize());
    }

    #[test]
    fn checkpoint_restore_resumes_exactly() {
        let data = encode(&[5.0, 6.0, 7.0]);
        let mut a = SumKernel::new();
        a.process_chunk(&data);

        let mut b = SumKernel::new();
        b.process_chunk(&data[..10]); // mid-item
        let state = b.checkpoint();
        let mut b2 = SumKernel::from_state(&state).unwrap();
        b2.process_chunk(&data[10..]);
        assert_eq!(a.finalize(), b2.finalize());
        assert_eq!(b2.bytes_processed(), 24);
    }

    #[test]
    fn restore_rejects_wrong_op() {
        let state = KernelState::new("grep");
        assert!(matches!(
            SumKernel::from_state(&state),
            Err(KernelError::WrongOp { .. })
        ));
    }

    #[test]
    fn result_is_constant_size() {
        let k = SumKernel::new();
        assert_eq!(k.result_size(0), 16);
        assert_eq!(k.result_size(1 << 30), 16);
    }

    #[test]
    fn complexity_matches_table_iii() {
        let c = SumKernel::new().complexity();
        assert_eq!(c.adds_per_item, 1);
        assert_eq!(c.total_ops_per_item(), 1);
        assert_eq!(c.item_bytes, 8);
    }

    #[test]
    fn decode_rejects_bad_length() {
        assert_eq!(SumKernel::decode_result(&[0; 15]), None);
    }

    #[test]
    fn empty_input_finalizes_to_zero() {
        let k = SumKernel::new();
        assert_eq!(SumKernel::decode_result(&k.finalize()), Some((0.0, 0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Sum over any values with any split point equals the naive sum.
        #[test]
        fn matches_naive_sum(
            vals in proptest::collection::vec(-1e6f64..1e6, 0..256),
            split in 0usize..2048,
        ) {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let cut = split.min(data.len());
            let mut k = SumKernel::new();
            k.process_chunk(&data[..cut]);
            // Interrupt + restore mid-stream.
            let mut k = SumKernel::from_state(&k.checkpoint()).unwrap();
            k.process_chunk(&data[cut..]);
            let (sum, count) = SumKernel::decode_result(&k.finalize()).unwrap();
            let naive: f64 = vals.iter().sum();
            prop_assert_eq!(count, vals.len() as u64);
            prop_assert!((sum - naive).abs() <= 1e-9 * naive.abs().max(1.0));
        }
    }
}
