//! One k-means assignment/accumulation pass over a 1-D f64 stream.
//!
//! K-means over scientific data is the heavyweight end of the classic
//! active-storage kernel suite (Son et al. ship a kmeans kernel with their
//! PVFS active storage). One `process` pass assigns each item to its nearest
//! centroid and accumulates per-cluster sums/counts; `finalize` emits the
//! updated centroids plus counts. The driver (or application) iterates
//! passes until convergence.

use crate::itemstream::ItemBuf;
use crate::kernel::{Complexity, Kernel, KernelError, KernelState, VarValue};

pub const OP_NAME: &str = "kmeans1d";

/// One streaming Lloyd's-algorithm pass.
#[derive(Debug, Clone)]
pub struct KMeansKernel {
    centroids: Vec<f64>,
    sums: Vec<f64>,
    counts: Vec<u64>,
    buf: ItemBuf,
    bytes: u64,
}

impl KMeansKernel {
    pub fn new(centroids: Vec<f64>) -> Result<Self, KernelError> {
        if centroids.is_empty() {
            return Err(KernelError::BadParams(
                "kmeans needs at least one centroid".into(),
            ));
        }
        let k = centroids.len();
        Ok(KMeansKernel {
            centroids,
            sums: vec![0.0; k],
            counts: vec![0; k],
            buf: ItemBuf::new(),
            bytes: 0,
        })
    }

    pub fn from_state(state: &KernelState) -> Result<Self, KernelError> {
        if state.op != OP_NAME {
            return Err(KernelError::WrongOp {
                expected: OP_NAME.into(),
                found: state.op.clone(),
            });
        }
        let centroids = state.get_f64_vec("centroids")?.to_vec();
        let sums = state.get_f64_vec("sums")?.to_vec();
        let counts = state.get_u64_vec("counts")?.to_vec();
        if centroids.is_empty() || sums.len() != centroids.len() || counts.len() != centroids.len()
        {
            return Err(KernelError::BadParams(
                "kmeans checkpoint arrays disagree on k".into(),
            ));
        }
        Ok(KMeansKernel {
            centroids,
            sums,
            counts,
            buf: ItemBuf::from_carry(state.get_bytes("carry")?.to_vec()),
            bytes: state.get_u64("bytes")?,
        })
    }

    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Updated centroids after this pass (clusters with no members keep
    /// their previous centroid).
    pub fn updated_centroids(&self) -> Vec<f64> {
        self.centroids
            .iter()
            .zip(self.sums.iter().zip(&self.counts))
            .map(|(&old, (&sum, &count))| if count > 0 { sum / count as f64 } else { old })
            .collect()
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Decode a result: `(updated_centroids, counts)`.
    pub fn decode_result(bytes: &[u8]) -> Option<(Vec<f64>, Vec<u64>)> {
        if bytes.len() < 8 || !(bytes.len() - 8).is_multiple_of(16) {
            return None;
        }
        let k = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        if bytes.len() != 8 + 16 * k {
            return None;
        }
        let mut centroids = Vec::with_capacity(k);
        let mut counts = Vec::with_capacity(k);
        for i in 0..k {
            let off = 8 + i * 8;
            centroids.push(f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
        }
        for i in 0..k {
            let off = 8 + 8 * k + i * 8;
            counts.push(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
        }
        Some((centroids, counts))
    }
}

impl Kernel for KMeansKernel {
    fn op_name(&self) -> &str {
        OP_NAME
    }

    fn process_chunk(&mut self, chunk: &[u8]) {
        self.bytes += chunk.len() as u64;
        let centroids = &self.centroids;
        let sums = &mut self.sums;
        let counts = &mut self.counts;
        self.buf.feed_f64(chunk, |v| {
            let mut best = 0usize;
            let mut best_d = (v - centroids[0]).abs();
            for (i, &c) in centroids.iter().enumerate().skip(1) {
                let d = (v - c).abs();
                if d < best_d {
                    best = i;
                    best_d = d;
                }
            }
            sums[best] += v;
            counts[best] += 1;
        });
    }

    fn finalize(&self) -> Vec<u8> {
        let k = self.k();
        let mut out = Vec::with_capacity(8 + 16 * k);
        out.extend_from_slice(&(k as u64).to_le_bytes());
        for c in self.updated_centroids() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    fn checkpoint(&self) -> KernelState {
        let mut s = KernelState::new(OP_NAME);
        s.push("centroids", VarValue::F64Vec(self.centroids.clone()));
        s.push("sums", VarValue::F64Vec(self.sums.clone()));
        s.push("counts", VarValue::U64Vec(self.counts.clone()));
        s.push("carry", VarValue::Bytes(self.buf.carry().to_vec()));
        s.push("bytes", VarValue::U64(self.bytes));
        s
    }

    fn result_size(&self, _input_bytes: u64) -> u64 {
        8 + 16 * self.k() as u64
    }

    fn complexity(&self) -> Complexity {
        // ~k distance computations (1 sub + 1 abs + 1 cmp each) per item.
        let k = self.k() as u32;
        Complexity {
            muls_per_item: 0,
            adds_per_item: 3 * k,
            divs_per_item: 0,
            item_bytes: 8,
        }
    }

    fn bytes_processed(&self) -> u64 {
        self.bytes
    }
}

impl crate::parallel::Merge for KMeansKernel {
    fn merge(&mut self, other: Self) {
        assert_eq!(
            self.centroids, other.centroids,
            "can only merge kmeans passes over the same centroids"
        );
        debug_assert!(
            self.buf.carry().is_empty() && other.buf.carry().is_empty(),
            "merge requires item-aligned inputs"
        );
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn assigns_to_nearest_centroid() {
        let mut k = KMeansKernel::new(vec![0.0, 10.0]).unwrap();
        k.process_chunk(&encode(&[1.0, 2.0, 9.0, 11.0]));
        assert_eq!(k.counts(), &[2, 2]);
        let c = k.updated_centroids();
        assert!((c[0] - 1.5).abs() < 1e-12);
        assert!((c[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        let mut k = KMeansKernel::new(vec![0.0, 100.0]).unwrap();
        k.process_chunk(&encode(&[1.0, 2.0]));
        let c = k.updated_centroids();
        assert_eq!(c[1], 100.0);
        assert_eq!(k.counts(), &[2, 0]);
    }

    #[test]
    fn result_roundtrip() {
        let mut k = KMeansKernel::new(vec![0.0, 10.0]).unwrap();
        k.process_chunk(&encode(&[1.0, 9.0]));
        let (centroids, counts) = KMeansKernel::decode_result(&k.finalize()).unwrap();
        assert_eq!(centroids.len(), 2);
        assert_eq!(counts, vec![1, 1]);
        assert_eq!(k.result_size(1 << 30), 8 + 32);
    }

    #[test]
    fn checkpoint_restore_equivalence() {
        let data = encode(&[3.0, 7.0, 1.0, 9.5, 4.2, 8.8]);
        let mut whole = KMeansKernel::new(vec![2.0, 8.0]).unwrap();
        whole.process_chunk(&data);

        let mut a = KMeansKernel::new(vec![2.0, 8.0]).unwrap();
        a.process_chunk(&data[..21]);
        let mut b = KMeansKernel::from_state(&a.checkpoint()).unwrap();
        b.process_chunk(&data[21..]);
        assert_eq!(whole.finalize(), b.finalize());
    }

    #[test]
    fn no_centroids_rejected() {
        assert!(KMeansKernel::new(vec![]).is_err());
    }

    #[test]
    fn iterated_passes_converge() {
        // Two well-separated groups; Lloyd's converges in a few passes.
        let vals: Vec<f64> = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    1.0 + (i % 5) as f64 * 0.1
                } else {
                    50.0 + (i % 7) as f64 * 0.1
                }
            })
            .collect();
        let data = encode(&vals);
        let mut centroids = vec![0.0, 10.0];
        for _ in 0..5 {
            let mut k = KMeansKernel::new(centroids.clone()).unwrap();
            k.process_chunk(&data);
            centroids = k.updated_centroids();
        }
        assert!((centroids[0] - 1.2).abs() < 0.1, "{centroids:?}");
        assert!((centroids[1] - 50.3).abs() < 0.1, "{centroids:?}");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(KMeansKernel::decode_result(&[1, 2, 3]).is_none());
        // k claims 5 clusters but payload is for 1.
        let mut bad = 5u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 16]);
        assert!(KMeansKernel::decode_result(&bad).is_none());
    }
}
