//! Kernel registry: op name → factory.
//!
//! The paper deploys the Processing Kernels component "both at storage nodes
//! and compute nodes" so either side can run (or resume) an operation by
//! name. The registry is that deployment: the Active Storage Server and the
//! Active Storage Client each hold one, and a checkpoint produced on one
//! side restores on the other purely from its op name and variable records.

use crate::gaussian::{GaussianFilter2D, GaussianOutput};
use crate::grep::GrepKernel;
use crate::histogram::HistogramKernel;
use crate::kernel::{Kernel, KernelError, KernelState};
use crate::kmeans::KMeansKernel;
use crate::smooth::SmoothKernel;
use crate::stats::StatsKernel;
use crate::sum::SumKernel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters an application supplies alongside the op name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelParams {
    /// Row width in pixels (gaussian2d).
    pub width: Option<u64>,
    /// Search pattern (grep).
    pub pattern: Option<Vec<u8>>,
    /// Initial centroids (kmeans1d).
    pub centroids: Option<Vec<f64>>,
    /// Request the full output instead of a digest where supported.
    pub full_output: bool,
}

impl KernelParams {
    pub fn with_width(width: u64) -> Self {
        KernelParams {
            width: Some(width),
            ..Default::default()
        }
    }

    pub fn with_pattern(pattern: &[u8]) -> Self {
        KernelParams {
            pattern: Some(pattern.to_vec()),
            ..Default::default()
        }
    }

    pub fn with_centroids(centroids: Vec<f64>) -> Self {
        KernelParams {
            centroids: Some(centroids),
            ..Default::default()
        }
    }
}

type CreateFn = fn(&KernelParams) -> Result<Box<dyn Kernel>, KernelError>;
type RestoreFn = fn(&KernelState) -> Result<Box<dyn Kernel>, KernelError>;

/// Maps op names to constructors and checkpoint-restorers.
pub struct KernelRegistry {
    entries: BTreeMap<String, (CreateFn, RestoreFn)>,
}

impl Default for KernelRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl KernelRegistry {
    /// An empty registry (register ops yourself).
    pub fn empty() -> Self {
        KernelRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// All built-in kernels registered.
    pub fn with_defaults() -> Self {
        let mut r = Self::empty();
        r.register(crate::sum::OP_NAME, create_sum, restore_sum);
        r.register(crate::gaussian::OP_NAME, create_gaussian, restore_gaussian);
        r.register(crate::stats::OP_NAME, create_stats, restore_stats);
        r.register(crate::grep::OP_NAME, create_grep, restore_grep);
        r.register(
            crate::histogram::OP_NAME,
            create_histogram,
            restore_histogram,
        );
        r.register(crate::kmeans::OP_NAME, create_kmeans, restore_kmeans);
        r.register(crate::smooth::OP_NAME, create_smooth, restore_smooth);
        r
    }

    /// Register (or replace) an op.
    pub fn register(&mut self, op: &str, create: CreateFn, restore: RestoreFn) {
        self.entries.insert(op.to_string(), (create, restore));
    }

    pub fn contains(&self, op: &str) -> bool {
        self.entries.contains_key(op)
    }

    /// Registered op names, sorted.
    pub fn ops(&self) -> Vec<&str> {
        self.entries.keys().map(|s| s.as_str()).collect()
    }

    /// Instantiate a fresh kernel for `op`.
    pub fn create(&self, op: &str, params: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
        let (create, _) = self
            .entries
            .get(op)
            .ok_or_else(|| KernelError::UnknownOp(op.to_string()))?;
        create(params)
    }

    /// Resume a kernel from a checkpoint (dispatching on `state.op`).
    pub fn restore(&self, state: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
        let (_, restore) = self
            .entries
            .get(&state.op)
            .ok_or_else(|| KernelError::UnknownOp(state.op.clone()))?;
        restore(state)
    }
}

fn create_sum(_p: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(SumKernel::new()))
}

fn restore_sum(s: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(SumKernel::from_state(s)?))
}

fn create_gaussian(p: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
    let width = p
        .width
        .ok_or_else(|| KernelError::BadParams("gaussian2d requires width".into()))?;
    let mode = if p.full_output {
        GaussianOutput::Full
    } else {
        GaussianOutput::Digest
    };
    Ok(Box::new(GaussianFilter2D::new(width as usize, mode)?))
}

fn restore_gaussian(s: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(GaussianFilter2D::from_state(s)?))
}

fn create_stats(_p: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(StatsKernel::new()))
}

fn restore_stats(s: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(StatsKernel::from_state(s)?))
}

fn create_grep(p: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
    let pattern = p
        .pattern
        .as_deref()
        .ok_or_else(|| KernelError::BadParams("grep requires a pattern".into()))?;
    Ok(Box::new(GrepKernel::new(pattern)?))
}

fn restore_grep(s: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(GrepKernel::from_state(s)?))
}

fn create_histogram(_p: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(HistogramKernel::new()))
}

fn restore_histogram(s: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(HistogramKernel::from_state(s)?))
}

fn create_smooth(p: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
    // Reuse `width` as the window size (one scalar parameter either way).
    let window = p
        .width
        .ok_or_else(|| KernelError::BadParams("smooth1d requires width (window size)".into()))?;
    Ok(Box::new(SmoothKernel::new(window as usize)?))
}

fn restore_smooth(s: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(SmoothKernel::from_state(s)?))
}

fn create_kmeans(p: &KernelParams) -> Result<Box<dyn Kernel>, KernelError> {
    let centroids = p
        .centroids
        .clone()
        .ok_or_else(|| KernelError::BadParams("kmeans1d requires centroids".into()))?;
    Ok(Box::new(KMeansKernel::new(centroids)?))
}

fn restore_kmeans(s: &KernelState) -> Result<Box<dyn Kernel>, KernelError> {
    Ok(Box::new(KMeansKernel::from_state(s)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_builtin_ops() {
        let r = KernelRegistry::with_defaults();
        assert_eq!(
            r.ops(),
            vec![
                "gaussian2d",
                "grep",
                "histogram",
                "kmeans1d",
                "smooth1d",
                "stats",
                "sum"
            ]
        );
        assert!(r.contains("sum"));
        assert!(!r.contains("zip"));
    }

    #[test]
    fn create_dispatches_by_name() {
        let r = KernelRegistry::with_defaults();
        let k = r.create("sum", &KernelParams::default()).unwrap();
        assert_eq!(k.op_name(), "sum");
        let k = r
            .create("gaussian2d", &KernelParams::with_width(64))
            .unwrap();
        assert_eq!(k.op_name(), "gaussian2d");
    }

    #[test]
    fn unknown_op_rejected() {
        let r = KernelRegistry::with_defaults();
        assert!(matches!(
            r.create("zip", &KernelParams::default()),
            Err(KernelError::UnknownOp(_))
        ));
    }

    #[test]
    fn missing_params_rejected() {
        let r = KernelRegistry::with_defaults();
        assert!(r.create("gaussian2d", &KernelParams::default()).is_err());
        assert!(r.create("grep", &KernelParams::default()).is_err());
        assert!(r.create("kmeans1d", &KernelParams::default()).is_err());
    }

    #[test]
    fn cross_side_checkpoint_restore() {
        // "Storage side" runs half the data, checkpoints; "client side"
        // restores from its own registry and finishes.
        let storage = KernelRegistry::with_defaults();
        let client = KernelRegistry::with_defaults();
        let data: Vec<u8> = (0..64u64).flat_map(|v| (v as f64).to_le_bytes()).collect();

        let mut k = storage.create("sum", &KernelParams::default()).unwrap();
        k.process_chunk(&data[..200]);
        let state = k.checkpoint();

        let mut k2 = client.restore(&state).unwrap();
        k2.process_chunk(&data[200..]);

        let mut whole = storage.create("sum", &KernelParams::default()).unwrap();
        whole.process_chunk(&data);
        assert_eq!(whole.finalize(), k2.finalize());
    }

    #[test]
    fn restore_unknown_op_rejected() {
        let r = KernelRegistry::with_defaults();
        let state = KernelState::new("mystery");
        assert!(matches!(r.restore(&state), Err(KernelError::UnknownOp(_))));
    }

    #[test]
    fn empty_registry_knows_nothing() {
        let r = KernelRegistry::empty();
        assert!(r.ops().is_empty());
        assert!(r.create("sum", &KernelParams::default()).is_err());
    }

    #[test]
    fn every_builtin_checkpoints_and_restores_fresh() {
        let r = KernelRegistry::with_defaults();
        let params = [
            ("sum", KernelParams::default()),
            ("stats", KernelParams::default()),
            ("histogram", KernelParams::default()),
            ("gaussian2d", KernelParams::with_width(8)),
            ("grep", KernelParams::with_pattern(b"ab")),
            ("kmeans1d", KernelParams::with_centroids(vec![0.0, 1.0])),
            ("smooth1d", KernelParams::with_width(5)),
        ];
        for (op, p) in params {
            let k = r.create(op, &p).unwrap();
            let state = k.checkpoint();
            let k2 = r.restore(&state).unwrap();
            assert_eq!(k2.op_name(), op);
            assert_eq!(k.finalize(), k2.finalize(), "op {op}");
        }
    }
}
