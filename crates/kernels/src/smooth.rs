//! 1-D sliding-window moving average ("smooth1d") — time-series smoothing,
//! the signal-processing sibling of the 2-D Gaussian: a stencil whose state
//! is a window of recent samples instead of image rows.
//!
//! For window size `w`, output `o_i = mean(x_{i-w+1} … x_i)` for `i ≥ w−1`.
//! Digest mode returns sum/min/max/count of the smoothed stream (36 bytes);
//! the window itself (plus a running window sum) is the checkpoint, so the
//! kernel migrates mid-stream like every other.

use crate::itemstream::ItemBuf;
use crate::kernel::{Complexity, Kernel, KernelError, KernelState, VarValue};
use std::collections::VecDeque;

pub const OP_NAME: &str = "smooth1d";

/// Streaming moving average over little-endian f64 samples.
#[derive(Debug, Clone)]
pub struct SmoothKernel {
    window: usize,
    recent: VecDeque<f64>,
    window_sum: f64,
    out_sum: f64,
    out_min: f64,
    out_max: f64,
    out_count: u64,
    buf: ItemBuf,
    bytes: u64,
}

impl SmoothKernel {
    pub fn new(window: usize) -> Result<Self, KernelError> {
        if window == 0 {
            return Err(KernelError::BadParams("smooth1d needs window >= 1".into()));
        }
        Ok(SmoothKernel {
            window,
            recent: VecDeque::with_capacity(window),
            window_sum: 0.0,
            out_sum: 0.0,
            out_min: f64::INFINITY,
            out_max: f64::NEG_INFINITY,
            out_count: 0,
            buf: ItemBuf::new(),
            bytes: 0,
        })
    }

    pub fn from_state(state: &KernelState) -> Result<Self, KernelError> {
        if state.op != OP_NAME {
            return Err(KernelError::WrongOp {
                expected: OP_NAME.into(),
                found: state.op.clone(),
            });
        }
        let window = state.get_u64("window")? as usize;
        if window == 0 {
            return Err(KernelError::BadParams("checkpoint has window = 0".into()));
        }
        Ok(SmoothKernel {
            window,
            recent: state.get_f64_vec("recent")?.iter().copied().collect(),
            window_sum: state.get_f64("window_sum")?,
            out_sum: state.get_f64("out_sum")?,
            out_min: state.get_f64("out_min")?,
            out_max: state.get_f64("out_max")?,
            out_count: state.get_u64("out_count")?,
            buf: ItemBuf::from_carry(state.get_bytes("carry")?.to_vec()),
            bytes: state.get_u64("bytes")?,
        })
    }

    pub fn window(&self) -> usize {
        self.window
    }

    fn push_sample(&mut self, v: f64) {
        self.recent.push_back(v);
        self.window_sum += v;
        if self.recent.len() > self.window {
            let old = self.recent.pop_front().expect("window non-empty");
            self.window_sum -= old;
        }
        if self.recent.len() == self.window {
            let o = self.window_sum / self.window as f64;
            self.out_sum += o;
            self.out_min = self.out_min.min(o);
            self.out_max = self.out_max.max(o);
            self.out_count += 1;
        }
    }

    /// Decode a result: `(sum, min, max, count)` of the smoothed stream.
    pub fn decode_result(bytes: &[u8]) -> Option<(f64, f64, f64, u64)> {
        if bytes.len() != 32 {
            return None;
        }
        Some((
            f64::from_le_bytes(bytes[0..8].try_into().ok()?),
            f64::from_le_bytes(bytes[8..16].try_into().ok()?),
            f64::from_le_bytes(bytes[16..24].try_into().ok()?),
            u64::from_le_bytes(bytes[24..32].try_into().ok()?),
        ))
    }

    /// Reference implementation over a whole slice.
    pub fn smooth(values: &[f64], window: usize) -> Vec<f64> {
        assert!(window >= 1);
        if values.len() < window {
            return Vec::new();
        }
        (0..=values.len() - window)
            .map(|i| values[i..i + window].iter().sum::<f64>() / window as f64)
            .collect()
    }
}

impl Kernel for SmoothKernel {
    fn op_name(&self) -> &str {
        OP_NAME
    }

    fn process_chunk(&mut self, chunk: &[u8]) {
        self.bytes += chunk.len() as u64;
        let mut samples = Vec::with_capacity(chunk.len() / 8 + 1);
        let mut buf = std::mem::take(&mut self.buf);
        buf.feed_f64(chunk, |v| samples.push(v));
        self.buf = buf;
        for v in samples {
            self.push_sample(v);
        }
    }

    fn finalize(&self) -> Vec<u8> {
        let (min, max) = if self.out_count == 0 {
            (0.0, 0.0)
        } else {
            (self.out_min, self.out_max)
        };
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.out_sum.to_le_bytes());
        out.extend_from_slice(&min.to_le_bytes());
        out.extend_from_slice(&max.to_le_bytes());
        out.extend_from_slice(&self.out_count.to_le_bytes());
        out
    }

    fn checkpoint(&self) -> KernelState {
        let mut s = KernelState::new(OP_NAME);
        s.push("window", VarValue::U64(self.window as u64));
        s.push(
            "recent",
            VarValue::F64Vec(self.recent.iter().copied().collect()),
        );
        s.push("window_sum", VarValue::F64(self.window_sum));
        s.push("out_sum", VarValue::F64(self.out_sum));
        s.push("out_min", VarValue::F64(self.out_min));
        s.push("out_max", VarValue::F64(self.out_max));
        s.push("out_count", VarValue::U64(self.out_count));
        s.push("carry", VarValue::Bytes(self.buf.carry().to_vec()));
        s.push("bytes", VarValue::U64(self.bytes));
        s
    }

    fn result_size(&self, _input_bytes: u64) -> u64 {
        32
    }

    fn complexity(&self) -> Complexity {
        Complexity {
            muls_per_item: 0,
            adds_per_item: 2, // add to window sum, subtract departing sample
            divs_per_item: 1,
            item_bytes: 8,
        }
    }

    fn bytes_processed(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn matches_reference_smoothing() {
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut k = SmoothKernel::new(3).unwrap();
        k.process_chunk(&encode(&vals));
        let (sum, min, max, count) = SmoothKernel::decode_result(&k.finalize()).unwrap();
        let reference = SmoothKernel::smooth(&vals, 3); // [2, 3, 4]
        assert_eq!(count as usize, reference.len());
        assert!((sum - reference.iter().sum::<f64>()).abs() < 1e-12);
        assert_eq!(min, 2.0);
        assert_eq!(max, 4.0);
    }

    #[test]
    fn window_one_is_identity_digest() {
        let vals = [3.0, -1.0, 4.0];
        let mut k = SmoothKernel::new(1).unwrap();
        k.process_chunk(&encode(&vals));
        let (sum, min, max, count) = SmoothKernel::decode_result(&k.finalize()).unwrap();
        assert_eq!((sum, min, max, count), (6.0, -1.0, 4.0, 3));
    }

    #[test]
    fn short_stream_emits_nothing() {
        let mut k = SmoothKernel::new(10).unwrap();
        k.process_chunk(&encode(&[1.0, 2.0]));
        let (_, _, _, count) = SmoothKernel::decode_result(&k.finalize()).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn checkpoint_restore_mid_window() {
        let vals: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let data = encode(&vals);
        let mut whole = SmoothKernel::new(7).unwrap();
        whole.process_chunk(&data);

        let mut a = SmoothKernel::new(7).unwrap();
        a.process_chunk(&data[..333]); // mid-sample, mid-window
        let mut b = SmoothKernel::from_state(&a.checkpoint()).unwrap();
        b.process_chunk(&data[333..]);
        assert_eq!(whole.finalize(), b.finalize());
    }

    #[test]
    fn zero_window_rejected() {
        assert!(SmoothKernel::new(0).is_err());
    }

    #[test]
    fn result_size_constant() {
        assert_eq!(SmoothKernel::new(5).unwrap().result_size(1 << 30), 32);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Streaming digest equals the reference smoothing under any
        /// checkpoint position and window size.
        #[test]
        fn matches_reference(
            vals in proptest::collection::vec(-1e3f64..1e3, 0..200),
            window in 1usize..12,
            cut_frac in 0.0f64..1.0,
        ) {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let cut = ((data.len() as f64) * cut_frac) as usize;
            let mut k = SmoothKernel::new(window).unwrap();
            k.process_chunk(&data[..cut]);
            let mut k = SmoothKernel::from_state(&k.checkpoint()).unwrap();
            k.process_chunk(&data[cut..]);
            let (sum, _, _, count) = SmoothKernel::decode_result(&k.finalize()).unwrap();

            let reference = SmoothKernel::smooth(&vals, window);
            prop_assert_eq!(count as usize, reference.len());
            let ref_sum: f64 = reference.iter().sum();
            prop_assert!((sum - ref_sum).abs() < 1e-6 * ref_sum.abs().max(1.0));
        }
    }
}
