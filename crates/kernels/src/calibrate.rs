//! Kernel rate calibration — regenerates the paper's Table III.
//!
//! The paper measured per-core processing rates on its testbed: 860 MB/s for
//! SUM and 80 MB/s for the 2-D Gaussian filter. These rates parameterize the
//! simulator's cost model, so this module measures the same quantity on the
//! host: wall-clock bytes/second of one kernel instance on one core, over a
//! buffer large enough to defeat cache effects.
//!
//! The experiment harness reports both the paper's rates (used for figure
//! reproduction) and the host's rates (for honesty about the substitution).

use crate::kernel::Kernel;
use serde::Serialize;
use std::time::Instant;

/// Result of one calibration run.
#[derive(Debug, Clone, Serialize)]
pub struct CalibrationReport {
    pub op: String,
    /// Total bytes pushed through the kernel.
    pub bytes: u64,
    pub seconds: f64,
    /// Measured rate in MB/s (MiB/second, matching the paper's units).
    pub rate_mb_per_s: f64,
    /// Passes over the buffer.
    pub passes: u32,
}

const MIB: f64 = 1024.0 * 1024.0;

/// Measure a kernel's single-core streaming rate.
///
/// Feeds `data` in `chunk` -byte pieces, repeating whole passes until at
/// least `min_seconds` of wall time elapsed (minimum one pass).
pub fn measure_rate(
    kernel: &mut dyn Kernel,
    data: &[u8],
    chunk: usize,
    min_seconds: f64,
) -> CalibrationReport {
    assert!(!data.is_empty() && chunk > 0);
    let start = Instant::now();
    let mut bytes = 0u64;
    let mut passes = 0u32;
    loop {
        for piece in data.chunks(chunk) {
            kernel.process_chunk(piece);
        }
        bytes += data.len() as u64;
        passes += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_seconds {
            // Prevent the optimizer from discarding the work.
            std::hint::black_box(kernel.finalize());
            return CalibrationReport {
                op: kernel.op_name().to_string(),
                bytes,
                seconds: elapsed,
                rate_mb_per_s: bytes as f64 / elapsed / MIB,
                passes,
            };
        }
    }
}

/// A synthetic f64 stream of `bytes` bytes (deterministic contents).
pub fn synthetic_f64_stream(bytes: usize) -> Vec<u8> {
    let items = bytes / 8;
    let mut out = Vec::with_capacity(items * 8);
    let mut x: u64 = 0x243F_6A88_85A3_08D3;
    for _ in 0..items {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map to a tame float range to avoid NaN/inf artifacts.
        let v = (x >> 11) as f64 / (1u64 << 53) as f64;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// A synthetic f32 row-major image of `width × height` pixels.
pub fn synthetic_image(width: usize, height: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(width * height * 4);
    for y in 0..height {
        for x in 0..width {
            let v = ((x * 31 + y * 17) % 256) as f32;
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{GaussianFilter2D, GaussianOutput};
    use crate::sum::SumKernel;

    #[test]
    fn measures_positive_rate() {
        let data = synthetic_f64_stream(1 << 20);
        let mut k = SumKernel::new();
        let r = measure_rate(&mut k, &data, 64 * 1024, 0.05);
        assert!(r.rate_mb_per_s > 0.0);
        assert!(r.seconds >= 0.05);
        assert!(r.passes >= 1);
        assert_eq!(r.op, "sum");
        assert_eq!(r.bytes, r.passes as u64 * (1 << 20));
    }

    #[test]
    fn sum_is_faster_than_gaussian() {
        // The whole premise of Table III: computation complexity orders the
        // per-core rates. SUM (1 add / 8 bytes) must beat the Gaussian
        // (19 ops / 4 bytes) by a wide margin on any hardware.
        let stream = synthetic_f64_stream(1 << 21);
        let image = synthetic_image(1024, 512);

        let mut sum = SumKernel::new();
        let sum_rate = measure_rate(&mut sum, &stream, 64 * 1024, 0.1).rate_mb_per_s;

        let mut gauss = GaussianFilter2D::new(1024, GaussianOutput::Digest).unwrap();
        let gauss_rate = measure_rate(&mut gauss, &image, 64 * 1024, 0.1).rate_mb_per_s;

        assert!(
            sum_rate > gauss_rate,
            "sum {sum_rate:.0} MB/s should exceed gaussian {gauss_rate:.0} MB/s"
        );
    }

    #[test]
    fn synthetic_streams_have_requested_sizes() {
        assert_eq!(synthetic_f64_stream(800).len(), 800);
        assert_eq!(synthetic_image(10, 4).len(), 160);
    }

    #[test]
    fn synthetic_stream_is_deterministic() {
        assert_eq!(synthetic_f64_stream(64), synthetic_f64_stream(64));
    }
}
