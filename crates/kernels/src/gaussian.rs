//! 2-D Gaussian filter — the paper's high-complexity benchmark (Table III).
//!
//! A 3×3 convolution with the classic kernel
//!
//! ```text
//!        | 1 2 1 |
//! 1/16 · | 2 4 2 |
//!        | 1 2 1 |
//! ```
//!
//! costing 9 multiplications, 9 additions and 1 division per pixel; the paper
//! measured 80 MB/s per core. Pixels are little-endian f32 streamed in
//! row-major order; the kernel buffers two rows and emits each interior row
//! as soon as its lower neighbour is complete, so it can be interrupted and
//! migrated at any byte offset.
//!
//! Two output modes:
//!
//! * [`GaussianOutput::Digest`] — accumulate sum/min/max/count of the output
//!   pixels and return 32 bytes. This is the active-storage configuration:
//!   the paper's premise is that active I/O returns a *small* result.
//! * [`GaussianOutput::Full`] — keep the filtered image (used by the imaging
//!   example, not by the scheduling experiments).

use crate::itemstream::ItemBuf;
use crate::kernel::{Complexity, Kernel, KernelError, KernelState, VarValue};

pub const OP_NAME: &str = "gaussian2d";

/// What the filter returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaussianOutput {
    /// 32-byte summary of the filtered image.
    Digest,
    /// The filtered interior pixels themselves.
    Full,
}

/// Streaming 3×3 Gaussian filter over row-major f32 pixels.
#[derive(Debug, Clone)]
pub struct GaussianFilter2D {
    width: usize,
    mode: GaussianOutput,
    buf: ItemBuf,
    /// Pixels of the row currently being assembled.
    pending: Vec<f32>,
    /// The two most recent complete rows (older first).
    rows: Vec<Vec<f32>>,
    rows_seen: u64,
    // Digest accumulators.
    out_sum: f64,
    out_min: f64,
    out_max: f64,
    out_count: u64,
    // Full-mode output.
    out_pixels: Vec<f32>,
    bytes: u64,
}

impl GaussianFilter2D {
    /// `width` = pixels per row; must be ≥ 3 so interior pixels exist.
    pub fn new(width: usize, mode: GaussianOutput) -> Result<Self, KernelError> {
        if width < 3 {
            return Err(KernelError::BadParams(format!(
                "gaussian2d needs width >= 3, got {width}"
            )));
        }
        Ok(GaussianFilter2D {
            width,
            mode,
            buf: ItemBuf::new(),
            pending: Vec::with_capacity(width),
            rows: Vec::new(),
            rows_seen: 0,
            out_sum: 0.0,
            out_min: f64::INFINITY,
            out_max: f64::NEG_INFINITY,
            out_count: 0,
            out_pixels: Vec::new(),
            bytes: 0,
        })
    }

    pub fn from_state(state: &KernelState) -> Result<Self, KernelError> {
        if state.op != OP_NAME {
            return Err(KernelError::WrongOp {
                expected: OP_NAME.into(),
                found: state.op.clone(),
            });
        }
        let width = state.get_u64("width")? as usize;
        let mode = match state.get_str("mode")? {
            "digest" => GaussianOutput::Digest,
            "full" => GaussianOutput::Full,
            other => return Err(KernelError::BadParams(format!("bad mode {other}"))),
        };
        let f32s = |name: &str| -> Result<Vec<f32>, KernelError> {
            Ok(state.get_f64_vec(name)?.iter().map(|&v| v as f32).collect())
        };
        let mut rows = Vec::new();
        for row in [f32s("row0")?, f32s("row1")?] {
            if !row.is_empty() {
                rows.push(row);
            }
        }
        Ok(GaussianFilter2D {
            width,
            mode,
            buf: ItemBuf::from_carry(state.get_bytes("carry")?.to_vec()),
            pending: f32s("pending")?,
            rows,
            rows_seen: state.get_u64("rows_seen")?,
            out_sum: state.get_f64("out_sum")?,
            out_min: state.get_f64("out_min")?,
            out_max: state.get_f64("out_max")?,
            out_count: state.get_u64("out_count")?,
            out_pixels: f32s("out_pixels")?,
            bytes: state.get_u64("bytes")?,
        })
    }

    pub fn width(&self) -> usize {
        self.width
    }

    fn push_pixel(&mut self, v: f32) {
        self.pending.push(v);
        if self.pending.len() == self.width {
            let row = std::mem::replace(&mut self.pending, Vec::with_capacity(self.width));
            self.push_row(row);
        }
    }

    fn push_row(&mut self, row: Vec<f32>) {
        self.rows_seen += 1;
        self.rows.push(row);
        if self.rows.len() == 3 {
            let (above, mid, below) = (&self.rows[0], &self.rows[1], &self.rows[2]);
            let mut emitted = Vec::new();
            for x in 1..self.width - 1 {
                let v = convolve3x3(above, mid, below, x);
                emitted.push(v);
            }
            for v in &emitted {
                let vf = *v as f64;
                self.out_sum += vf;
                self.out_min = self.out_min.min(vf);
                self.out_max = self.out_max.max(vf);
                self.out_count += 1;
            }
            if self.mode == GaussianOutput::Full {
                self.out_pixels.extend_from_slice(&emitted);
            }
            self.rows.remove(0);
        }
    }

    /// Decode a Digest-mode result.
    pub fn decode_digest(bytes: &[u8]) -> Option<(f64, f64, f64, u64)> {
        if bytes.len() != 32 {
            return None;
        }
        Some((
            f64::from_le_bytes(bytes[0..8].try_into().ok()?),
            f64::from_le_bytes(bytes[8..16].try_into().ok()?),
            f64::from_le_bytes(bytes[16..24].try_into().ok()?),
            u64::from_le_bytes(bytes[24..32].try_into().ok()?),
        ))
    }
}

/// 3×3 Gaussian at column `x` of the middle row — 9 muls, 9 adds, 1 div
/// (Table III's per-item cost).
#[inline]
fn convolve3x3(above: &[f32], mid: &[f32], below: &[f32], x: usize) -> f32 {
    let acc = 1.0 * above[x - 1]
        + 2.0 * above[x]
        + 1.0 * above[x + 1]
        + 2.0 * mid[x - 1]
        + 4.0 * mid[x]
        + 2.0 * mid[x + 1]
        + 1.0 * below[x - 1]
        + 2.0 * below[x]
        + 1.0 * below[x + 1];
    acc / 16.0
}

/// Reference implementation: filter a whole image, returning the
/// `(h-2) × (w-2)` interior. Used by tests and the imaging example.
pub fn filter_image(pixels: &[f32], width: usize) -> Vec<f32> {
    assert!(width >= 3 && pixels.len().is_multiple_of(width));
    let height = pixels.len() / width;
    let mut out = Vec::new();
    for y in 1..height.saturating_sub(1) {
        let above = &pixels[(y - 1) * width..y * width];
        let mid = &pixels[y * width..(y + 1) * width];
        let below = &pixels[(y + 1) * width..(y + 2) * width];
        for x in 1..width - 1 {
            out.push(convolve3x3(above, mid, below, x));
        }
    }
    out
}

impl Kernel for GaussianFilter2D {
    fn op_name(&self) -> &str {
        OP_NAME
    }

    fn process_chunk(&mut self, chunk: &[u8]) {
        self.bytes += chunk.len() as u64;
        // Split borrows: drain pixels into a scratch list, then push.
        let mut pixels = Vec::with_capacity(chunk.len() / 4 + 1);
        let mut buf = std::mem::take(&mut self.buf);
        buf.feed_f32(chunk, |v| pixels.push(v));
        self.buf = buf;
        for v in pixels {
            self.push_pixel(v);
        }
    }

    fn finalize(&self) -> Vec<u8> {
        match self.mode {
            GaussianOutput::Digest => {
                let mut out = Vec::with_capacity(32);
                out.extend_from_slice(&self.out_sum.to_le_bytes());
                let (min, max) = if self.out_count == 0 {
                    (0.0, 0.0)
                } else {
                    (self.out_min, self.out_max)
                };
                out.extend_from_slice(&min.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
                out.extend_from_slice(&self.out_count.to_le_bytes());
                out
            }
            GaussianOutput::Full => self
                .out_pixels
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect(),
        }
    }

    fn checkpoint(&self) -> KernelState {
        let f64s = |v: &[f32]| VarValue::F64Vec(v.iter().map(|&x| x as f64).collect());
        let mut s = KernelState::new(OP_NAME);
        s.push("width", VarValue::U64(self.width as u64));
        s.push(
            "mode",
            VarValue::Str(
                match self.mode {
                    GaussianOutput::Digest => "digest",
                    GaussianOutput::Full => "full",
                }
                .into(),
            ),
        );
        s.push("carry", VarValue::Bytes(self.buf.carry().to_vec()));
        s.push("pending", f64s(&self.pending));
        s.push(
            "row0",
            f64s(self.rows.first().map(|r| r.as_slice()).unwrap_or(&[])),
        );
        s.push(
            "row1",
            f64s(self.rows.get(1).map(|r| r.as_slice()).unwrap_or(&[])),
        );
        s.push("rows_seen", VarValue::U64(self.rows_seen));
        s.push("out_sum", VarValue::F64(self.out_sum));
        s.push("out_min", VarValue::F64(self.out_min));
        s.push("out_max", VarValue::F64(self.out_max));
        s.push("out_count", VarValue::U64(self.out_count));
        s.push("out_pixels", f64s(&self.out_pixels));
        s.push("bytes", VarValue::U64(self.bytes));
        s
    }

    fn result_size(&self, input_bytes: u64) -> u64 {
        match self.mode {
            GaussianOutput::Digest => 32,
            // Interior shrinks by two rows and two columns; approximate
            // with the input size (an upper bound the scheduler can trust).
            GaussianOutput::Full => input_bytes,
        }
    }

    fn complexity(&self) -> Complexity {
        Complexity {
            muls_per_item: 9,
            adds_per_item: 9,
            divs_per_item: 1,
            item_bytes: 4,
        }
    }

    fn bytes_processed(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// 4×4 gradient image.
    fn image4x4() -> Vec<f32> {
        (0..16).map(|i| i as f32).collect()
    }

    #[test]
    fn matches_reference_filter() {
        let img = image4x4();
        let mut k = GaussianFilter2D::new(4, GaussianOutput::Full).unwrap();
        k.process_chunk(&encode(&img));
        let out = k.finalize();
        let expect = filter_image(&img, 4);
        let got: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(got.len(), 4); // (4-2) × (4-2)
    }

    #[test]
    fn uniform_image_is_fixed_point() {
        // A constant image convolves to the same constant (kernel sums to 1).
        let img = vec![5.0f32; 5 * 5];
        let out = filter_image(&img, 5);
        assert_eq!(out.len(), 9);
        for v in out {
            assert!((v - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn digest_summarizes_output() {
        let img = image4x4();
        let mut k = GaussianFilter2D::new(4, GaussianOutput::Digest).unwrap();
        k.process_chunk(&encode(&img));
        let (sum, min, max, count) = GaussianFilter2D::decode_digest(&k.finalize()).unwrap();
        let expect = filter_image(&img, 4);
        let esum: f64 = expect.iter().map(|&v| v as f64).sum();
        assert_eq!(count, 4);
        assert!((sum - esum).abs() < 1e-6);
        assert!(min <= max);
    }

    #[test]
    fn chunking_invariance() {
        let img: Vec<f32> = (0..8 * 6).map(|i| (i as f32).sin()).collect();
        let data = encode(&img);
        let mut whole = GaussianFilter2D::new(8, GaussianOutput::Digest).unwrap();
        whole.process_chunk(&data);
        let mut split = GaussianFilter2D::new(8, GaussianOutput::Digest).unwrap();
        for c in data.chunks(13) {
            split.process_chunk(c);
        }
        assert_eq!(whole.finalize(), split.finalize());
    }

    #[test]
    fn checkpoint_restore_mid_image() {
        let img: Vec<f32> = (0..8 * 8).map(|i| (i % 7) as f32).collect();
        let data = encode(&img);
        let mut whole = GaussianFilter2D::new(8, GaussianOutput::Full).unwrap();
        whole.process_chunk(&data);

        let mut a = GaussianFilter2D::new(8, GaussianOutput::Full).unwrap();
        a.process_chunk(&data[..101]); // mid-pixel, mid-row
        let state = a.checkpoint();
        let mut b = GaussianFilter2D::from_state(&state).unwrap();
        b.process_chunk(&data[101..]);
        assert_eq!(whole.finalize(), b.finalize());
        assert_eq!(b.bytes_processed(), data.len() as u64);
    }

    #[test]
    fn width_below_three_rejected() {
        assert!(matches!(
            GaussianFilter2D::new(2, GaussianOutput::Digest),
            Err(KernelError::BadParams(_))
        ));
    }

    #[test]
    fn complexity_matches_table_iii() {
        let k = GaussianFilter2D::new(4, GaussianOutput::Digest).unwrap();
        let c = k.complexity();
        assert_eq!(
            (c.muls_per_item, c.adds_per_item, c.divs_per_item),
            (9, 9, 1)
        );
        assert_eq!(c.item_bytes, 4);
    }

    #[test]
    fn digest_result_is_constant_size() {
        let k = GaussianFilter2D::new(4, GaussianOutput::Digest).unwrap();
        assert_eq!(k.result_size(1 << 30), 32);
        let k = GaussianFilter2D::new(4, GaussianOutput::Full).unwrap();
        assert_eq!(k.result_size(1 << 20), 1 << 20);
    }

    #[test]
    fn empty_digest_decodes_to_zeroes() {
        let k = GaussianFilter2D::new(4, GaussianOutput::Digest).unwrap();
        let (sum, min, max, count) = GaussianFilter2D::decode_digest(&k.finalize()).unwrap();
        assert_eq!((sum, min, max, count), (0.0, 0.0, 0.0, 0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn encode(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    proptest! {
        /// Streaming Full output equals the reference image filter for any
        /// image shape and any checkpoint position.
        #[test]
        fn streaming_equals_reference(
            w in 3usize..12,
            h in 1usize..12,
            seed in 0u64..1000,
            cut_frac in 0.0f64..1.0,
        ) {
            let n = w * h;
            let img: Vec<f32> = (0..n)
                .map(|i| ((i as u64).wrapping_mul(seed + 1) % 255) as f32)
                .collect();
            let data = encode(&img);
            let cut = ((data.len() as f64) * cut_frac) as usize;

            let mut k = GaussianFilter2D::new(w, GaussianOutput::Full).unwrap();
            k.process_chunk(&data[..cut]);
            let mut k = GaussianFilter2D::from_state(&k.checkpoint()).unwrap();
            k.process_chunk(&data[cut..]);

            let got: Vec<f32> = k
                .finalize()
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            prop_assert_eq!(got, filter_image(&img, w));
        }
    }
}
