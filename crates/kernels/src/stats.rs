//! Descriptive statistics kernel: min/max/mean/variance/count over f64 items.
//!
//! The climate-analysis style reduction active storage was designed for
//! (cf. Son et al.'s statistics kernels): hundreds of MB in, 40 bytes out.
//! Uses Welford's algorithm, whose state (count, mean, M2) checkpoints to
//! three scalars.

use crate::itemstream::ItemBuf;
use crate::kernel::{Complexity, Kernel, KernelError, KernelState, VarValue};

pub const OP_NAME: &str = "stats";

/// Streaming min/max/mean/variance.
#[derive(Debug, Clone)]
pub struct StatsKernel {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    buf: ItemBuf,
    bytes: u64,
}

impl Default for StatsKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsKernel {
    pub fn new() -> Self {
        StatsKernel {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buf: ItemBuf::new(),
            bytes: 0,
        }
    }

    pub fn from_state(state: &KernelState) -> Result<Self, KernelError> {
        if state.op != OP_NAME {
            return Err(KernelError::WrongOp {
                expected: OP_NAME.into(),
                found: state.op.clone(),
            });
        }
        Ok(StatsKernel {
            count: state.get_u64("count")?,
            mean: state.get_f64("mean")?,
            m2: state.get_f64("m2")?,
            min: state.get_f64("min")?,
            max: state.get_f64("max")?,
            buf: ItemBuf::from_carry(state.get_bytes("carry")?.to_vec()),
            bytes: state.get_u64("bytes")?,
        })
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Decode a result: `(min, max, mean, variance, count)`.
    pub fn decode_result(bytes: &[u8]) -> Option<(f64, f64, f64, f64, u64)> {
        if bytes.len() != 40 {
            return None;
        }
        let f = |i: usize| f64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        Some((
            f(0),
            f(8),
            f(16),
            f(24),
            u64::from_le_bytes(bytes[32..40].try_into().unwrap()),
        ))
    }
}

impl Kernel for StatsKernel {
    fn op_name(&self) -> &str {
        OP_NAME
    }

    fn process_chunk(&mut self, chunk: &[u8]) {
        self.bytes += chunk.len() as u64;
        let mut count = self.count;
        let mut mean = self.mean;
        let mut m2 = self.m2;
        let mut min = self.min;
        let mut max = self.max;
        self.buf.feed_f64(chunk, |v| {
            count += 1;
            let delta = v - mean;
            mean += delta / count as f64;
            m2 += delta * (v - mean);
            min = min.min(v);
            max = max.max(v);
        });
        self.count = count;
        self.mean = mean;
        self.m2 = m2;
        self.min = min;
        self.max = max;
    }

    fn finalize(&self) -> Vec<u8> {
        let (min, max) = if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        let mean = if self.count == 0 { 0.0 } else { self.mean };
        let var = if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        };
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(&min.to_le_bytes());
        out.extend_from_slice(&max.to_le_bytes());
        out.extend_from_slice(&mean.to_le_bytes());
        out.extend_from_slice(&var.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out
    }

    fn checkpoint(&self) -> KernelState {
        let mut s = KernelState::new(OP_NAME);
        s.push("count", VarValue::U64(self.count));
        s.push("mean", VarValue::F64(self.mean));
        s.push("m2", VarValue::F64(self.m2));
        s.push("min", VarValue::F64(self.min));
        s.push("max", VarValue::F64(self.max));
        s.push("carry", VarValue::Bytes(self.buf.carry().to_vec()));
        s.push("bytes", VarValue::U64(self.bytes));
        s
    }

    fn result_size(&self, _input_bytes: u64) -> u64 {
        40
    }

    fn complexity(&self) -> Complexity {
        Complexity {
            muls_per_item: 1,
            adds_per_item: 3,
            divs_per_item: 1,
            item_bytes: 8,
        }
    }

    fn bytes_processed(&self) -> u64 {
        self.bytes
    }
}

impl crate::parallel::Merge for StatsKernel {
    fn merge(&mut self, other: Self) {
        debug_assert!(
            self.buf.carry().is_empty() && other.buf.carry().is_empty(),
            "merge requires item-aligned inputs"
        );
        // Chan et al.'s parallel Welford combination.
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        let delta = other.mean - self.mean;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn known_moments() {
        let mut k = StatsKernel::new();
        k.process_chunk(&encode(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]));
        let (min, max, mean, var, count) = StatsKernel::decode_result(&k.finalize()).unwrap();
        assert_eq!((min, max), (2.0, 9.0));
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((var - 4.0).abs() < 1e-12);
        assert_eq!(count, 8);
    }

    #[test]
    fn empty_input_is_zeroes() {
        let k = StatsKernel::new();
        let (min, max, mean, var, count) = StatsKernel::decode_result(&k.finalize()).unwrap();
        assert_eq!((min, max, mean, var, count), (0.0, 0.0, 0.0, 0.0, 0));
        assert!(k.mean().is_nan());
        assert!(k.variance().is_nan());
    }

    #[test]
    fn checkpoint_restore_equivalence() {
        let data = encode(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut whole = StatsKernel::new();
        whole.process_chunk(&data);

        let mut a = StatsKernel::new();
        a.process_chunk(&data[..17]);
        let mut b = StatsKernel::from_state(&a.checkpoint()).unwrap();
        b.process_chunk(&data[17..]);
        assert_eq!(whole.finalize(), b.finalize());
    }

    #[test]
    fn wrong_op_rejected() {
        assert!(StatsKernel::from_state(&KernelState::new("sum")).is_err());
    }

    #[test]
    fn result_size_constant() {
        assert_eq!(StatsKernel::new().result_size(1 << 30), 40);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Stats match naive computation under any chunk split.
        #[test]
        fn matches_naive(
            vals in proptest::collection::vec(-1e5f64..1e5, 1..200),
            cut_frac in 0.0f64..1.0,
        ) {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            let cut = ((data.len() as f64) * cut_frac) as usize;
            let mut k = StatsKernel::new();
            k.process_chunk(&data[..cut]);
            let mut k = StatsKernel::from_state(&k.checkpoint()).unwrap();
            k.process_chunk(&data[cut..]);
            let (min, max, mean, var, count) =
                StatsKernel::decode_result(&k.finalize()).unwrap();

            let n = vals.len() as f64;
            let nmean = vals.iter().sum::<f64>() / n;
            let nvar = vals.iter().map(|v| (v - nmean).powi(2)).sum::<f64>() / n;
            prop_assert_eq!(count, vals.len() as u64);
            prop_assert_eq!(min, vals.iter().cloned().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(max, vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
            prop_assert!((mean - nmean).abs() < 1e-7 * nmean.abs().max(1.0));
            prop_assert!((var - nvar).abs() < 1e-5 * nvar.abs().max(1.0));
        }
    }
}
