//! Fixed-size-item framing over arbitrary byte chunks.
//!
//! Streaming kernels receive bytes in whatever chunking the transport
//! produced; `ItemBuf` re-frames them into fixed-size items, carrying the
//! trailing partial item between chunks (and across checkpoints).

/// Carries the partial trailing item between `process_chunk` calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ItemBuf {
    carry: Vec<u8>,
}

impl ItemBuf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_carry(carry: Vec<u8>) -> Self {
        ItemBuf { carry }
    }

    pub fn carry(&self) -> &[u8] {
        &self.carry
    }

    /// Feed `chunk`, invoking `f` once per complete `item_size`-byte item.
    pub fn feed<F: FnMut(&[u8])>(&mut self, item_size: usize, chunk: &[u8], mut f: F) {
        debug_assert!(item_size > 0);
        let mut rest = chunk;
        // Complete a pending partial item first.
        if !self.carry.is_empty() {
            let need = item_size - self.carry.len();
            let take = need.min(rest.len());
            self.carry.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.carry.len() == item_size {
                let item = std::mem::take(&mut self.carry);
                f(&item);
            } else {
                return; // chunk exhausted inside the partial item
            }
        }
        let whole = rest.len() / item_size * item_size;
        for item in rest[..whole].chunks_exact(item_size) {
            f(item);
        }
        self.carry.extend_from_slice(&rest[whole..]);
    }

    /// Feed, decoding each item as a little-endian f64.
    pub fn feed_f64<F: FnMut(f64)>(&mut self, chunk: &[u8], mut f: F) {
        self.feed(8, chunk, |item| {
            f(f64::from_le_bytes(item.try_into().expect("8-byte item")))
        });
    }

    /// Feed, decoding each item as a little-endian f32.
    pub fn feed_f32<F: FnMut(f32)>(&mut self, chunk: &[u8], mut f: F) {
        self.feed(4, chunk, |item| {
            f(f32::from_le_bytes(item.try_into().expect("4-byte item")))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_f64(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn whole_chunks_decode_every_item() {
        let mut b = ItemBuf::new();
        let data = encode_f64(&[1.0, 2.0, 3.0]);
        let mut got = Vec::new();
        b.feed_f64(&data, |v| got.push(v));
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        assert!(b.carry().is_empty());
    }

    #[test]
    fn split_mid_item_carries() {
        let data = encode_f64(&[1.0, 2.0]);
        let mut b = ItemBuf::new();
        let mut got = Vec::new();
        b.feed_f64(&data[..11], |v| got.push(v));
        assert_eq!(got, vec![1.0]);
        assert_eq!(b.carry().len(), 3);
        b.feed_f64(&data[11..], |v| got.push(v));
        assert_eq!(got, vec![1.0, 2.0]);
        assert!(b.carry().is_empty());
    }

    #[test]
    fn byte_at_a_time_still_decodes() {
        let data = encode_f64(&[42.5, -1.25]);
        let mut b = ItemBuf::new();
        let mut got = Vec::new();
        for byte in &data {
            b.feed_f64(std::slice::from_ref(byte), |v| got.push(v));
        }
        assert_eq!(got, vec![42.5, -1.25]);
    }

    #[test]
    fn f32_framing() {
        let data: Vec<u8> = [1.5f32, 2.5].iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut b = ItemBuf::new();
        let mut got = Vec::new();
        b.feed_f32(&data, |v| got.push(v));
        assert_eq!(got, vec![1.5, 2.5]);
    }

    #[test]
    fn carry_roundtrips_through_checkpoint() {
        let data = encode_f64(&[7.0]);
        let mut b = ItemBuf::new();
        let mut got = Vec::new();
        b.feed_f64(&data[..5], |v| got.push(v));
        // "Checkpoint": extract carry, rebuild, continue.
        let carry = b.carry().to_vec();
        let mut b2 = ItemBuf::from_carry(carry);
        b2.feed_f64(&data[5..], |v| got.push(v));
        assert_eq!(got, vec![7.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Item framing is invariant under arbitrary chunk splits.
        #[test]
        fn chunking_invariance(
            vals in proptest::collection::vec(-1e9f64..1e9, 0..64),
            splits in proptest::collection::vec(0usize..512, 0..16),
        ) {
            let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
            // Reference: one chunk.
            let mut whole = Vec::new();
            let mut b = ItemBuf::new();
            b.feed_f64(&data, |v| whole.push(v));

            // Split at the (sorted, clamped) positions.
            let mut pos: Vec<usize> = splits.iter().map(|&s| s % (data.len() + 1)).collect();
            pos.sort_unstable();
            let mut parts = Vec::new();
            let mut prev = 0;
            for p in pos {
                parts.push(&data[prev..p]);
                prev = p;
            }
            parts.push(&data[prev..]);

            let mut split_vals = Vec::new();
            let mut b2 = ItemBuf::new();
            for part in parts {
                b2.feed_f64(part, |v| split_vals.push(v));
            }
            prop_assert_eq!(whole, split_vals);
        }
    }
}
