//! Deterministic, seed-derived random streams.
//!
//! Every random decision in a simulation draws from a stream derived from a
//! single root seed and a label, so adding a new consumer of randomness never
//! perturbs the draws of existing consumers (no shared-stream coupling), and
//! every run is reproducible bit-for-bit.
//!
//! `ChaCha8` is used because its output is stable across crate versions and
//! platforms, unlike `SmallRng`.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Factory for independent named random streams under one root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    root: u64,
}

impl RngFactory {
    pub fn new(root: u64) -> Self {
        RngFactory { root }
    }

    pub fn root_seed(&self) -> u64 {
        self.root
    }

    /// A stream identified by a string label.
    pub fn stream(&self, label: &str) -> ChaCha8Rng {
        self.stream_indexed(label, 0)
    }

    /// A stream identified by a label plus an index (e.g. one per node).
    pub fn stream_indexed(&self, label: &str, index: u64) -> ChaCha8Rng {
        let mut h = Fnv1a::new();
        h.write_u64(self.root);
        h.write(label.as_bytes());
        h.write_u64(index);
        let a = h.finish();
        // Widen 64 -> 256 bits with splitmix so streams differ in all words.
        let mut seed = [0u8; 32];
        let mut s = a;
        for chunk in seed.chunks_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }

    /// Derive a sub-factory, e.g. one per replication.
    pub fn child(&self, label: &str, index: u64) -> RngFactory {
        let mut h = Fnv1a::new();
        h.write_u64(self.root);
        h.write(label.as_bytes());
        h.write_u64(index);
        RngFactory {
            root: splitmix64(h.finish()),
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal FNV-1a; stable across platforms (std's `DefaultHasher` is not
/// guaranteed stable between Rust releases).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream("net");
        let mut b = f.stream("net");
        let xa: [u64; 4] = core::array::from_fn(|_| a.random());
        let xb: [u64; 4] = core::array::from_fn(|_| b.random());
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        let mut a = f.stream("net");
        let mut b = f.stream("cpu");
        let xa: u64 = a.random();
        let xb: u64 = b.random();
        assert_ne!(xa, xb);
    }

    #[test]
    fn different_indices_differ() {
        let f = RngFactory::new(42);
        let mut a = f.stream_indexed("node", 0);
        let mut b = f.stream_indexed("node", 1);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn different_roots_differ() {
        let a: u64 = RngFactory::new(1).stream("x").random();
        let b: u64 = RngFactory::new(2).stream("x").random();
        assert_ne!(a, b);
    }

    #[test]
    fn child_factories_are_independent() {
        let f = RngFactory::new(7);
        let c0 = f.child("rep", 0);
        let c1 = f.child("rep", 1);
        assert_ne!(c0.root_seed(), c1.root_seed());
        let a: u64 = c0.stream("net").random();
        let b: u64 = c1.stream("net").random();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_values_are_stable() {
        // Pin exact draws: if this test ever fails, reproducibility of every
        // recorded experiment is broken — bump experiment records explicitly.
        let mut r = RngFactory::new(0).stream("pinned");
        let v: u64 = r.random();
        let again: u64 = RngFactory::new(0).stream("pinned").random();
        assert_eq!(v, again);
    }

    #[test]
    fn uniform_range_draws_in_range() {
        let mut r = RngFactory::new(3).stream("range");
        for _ in 0..1000 {
            let v: f64 = r.random_range(111.0..=120.0);
            assert!((111.0..=120.0).contains(&v));
        }
    }
}
