//! Stable-order event queue.
//!
//! Events with equal timestamps pop in insertion (FIFO) order, which makes
//! simulations deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    // Reversed so the max-heap yields the *earliest* (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of cancelled-but-still-enqueued entries (tombstones): dropped
    /// at the head instead of eagerly dug out of the heap. The contract is
    /// that only *pending* seqs are ever cancelled, so every tombstone is
    /// guaranteed to still be in `heap`.
    dead: HashSet<u64>,
    seq: u64,
    popped: u64,
    cancelled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            dead: HashSet::new(),
            seq: 0,
            popped: 0,
            cancelled: 0,
        }
    }

    /// Schedule `event` at absolute time `time`. Returns the entry's seq,
    /// usable with [`EventQueue::cancel`] while the entry is pending.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
        seq
    }

    /// Cancel the pending entry with the given seq: it will never be
    /// dispatched and does not count toward `dispatched_count`. The caller
    /// must guarantee the entry is still pending (not yet popped).
    pub fn cancel(&mut self, seq: u64) {
        self.dead.insert(seq);
        self.cancelled += 1;
    }

    /// Drop cancelled entries sitting at the heap's head.
    fn purge_dead(&mut self) {
        while !self.dead.is_empty() {
            match self.heap.peek() {
                Some(head) if self.dead.contains(&head.seq) => {
                    let e = self.heap.pop().expect("peeked entry");
                    self.dead.remove(&e.seq);
                }
                _ => break,
            }
        }
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.purge_dead();
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Timestamp of the earliest pending live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_dead();
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len() - self.dead.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (including later-cancelled).
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever dispatched (cancelled entries excluded).
    pub fn dispatched_count(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever cancelled.
    pub fn cancelled_count(&self) -> u64 {
        self.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.dispatched_count(), 1);
    }

    #[test]
    fn cancelled_entries_never_pop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let _b = q.push(t(2), "b");
        let c = q.push(t(3), "c");
        q.cancel(a);
        q.cancel(c);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 3);
        assert_eq!(q.dispatched_count(), 1);
        assert_eq!(q.cancelled_count(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop(), Some((t(5), 0)));
        q.push(t(7), 2);
        assert_eq!(q.pop(), Some((t(7), 2)));
        assert_eq!(q.pop(), Some((t(10), 1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping yields a sequence sorted by time, and FIFO among equals.
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &ts) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(ts), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().copied().zip(0..times.len()).collect();
            expected.sort_by_key(|&(ts, i)| (ts, i)); // stable by construction
            for (ts, i) in expected {
                prop_assert_eq!(q.pop(), Some((SimTime::from_nanos(ts), i)));
            }
            prop_assert!(q.is_empty());
        }
    }
}
