//! Component layer: decompose a [`World`] into event-routed subsystems.
//!
//! A large simulation world tends to grow into one `impl` owning every
//! handler. This module provides the two traits that let it split into
//! focused subsystems without changing behaviour (dslab-style components
//! over a single simulation core):
//!
//! * [`Routed`] — the world's event type declares, per variant, which
//!   component owns it (a small fieldless `Route` enum).
//! * [`Component`] — a named subsystem handling exactly the event subset
//!   routed to it, with full access to the world.
//!
//! Unlike actor-style frameworks, cross-component interaction is a direct
//! method call inside the same event dispatch — no extra routing events, no
//! per-component mailboxes. Decomposition is therefore *free*: the event
//! schedule of the decomposed world is bit-identical to the monolith's,
//! which is what allows golden-trace tests to prove a split safe.
//!
//! The intended wiring: the world embeds one state struct per component,
//! each component's handlers live in its own module, and the world's
//! [`World::handle`] collapses to a `match event.route()` that forwards to
//! [`Component::dispatch`].

use crate::executor::{Scheduler, World};
use crate::time::SimTime;

/// Typed event routing: every event names the component that owns it.
pub trait Routed {
    /// Routing key — a small fieldless enum with one variant per component.
    type Route: Copy + Eq + core::fmt::Debug;

    /// The component this event is dispatched to.
    fn route(&self) -> Self::Route;
}

/// One subsystem of a decomposed world.
///
/// A component is a *namespace of behaviour* over the world's state: it is
/// implemented on a zero-sized marker type, owns one [`Routed::route`]
/// value, and handles every event carrying that route. Private state lives
/// in a struct the world embeds; shared state stays on the world itself.
pub trait Component<W: World>
where
    W::Event: Routed,
{
    /// The route this component owns.
    const ROUTE: <W::Event as Routed>::Route;

    /// Component name, for diagnostics and assertion messages.
    const NAME: &'static str;

    /// Handle one event routed to this component.
    fn handle(world: &mut W, now: SimTime, event: W::Event, sched: &mut Scheduler<W::Event>);

    /// [`Component::handle`] plus a debug-mode routing check: catches a
    /// world whose dispatch table disagrees with its event routing.
    fn dispatch(world: &mut W, now: SimTime, event: W::Event, sched: &mut Scheduler<W::Event>) {
        debug_assert_eq!(
            event.route(),
            Self::ROUTE,
            "event misrouted to component {}",
            Self::NAME
        );
        Self::handle(world, now, event, sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use crate::time::SimSpan;

    /// Toy decomposed world: a producer component emits work events, a
    /// consumer component tallies them.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Route {
        Producer,
        Consumer,
    }

    #[derive(Debug)]
    enum Ev {
        Produce(u32),
        Consume(u32),
    }

    impl Routed for Ev {
        type Route = Route;
        fn route(&self) -> Route {
            match self {
                Ev::Produce(_) => Route::Producer,
                Ev::Consume(_) => Route::Consumer,
            }
        }
    }

    #[derive(Default)]
    struct Toy {
        produced: u32,
        consumed: u32,
    }

    struct Producer;
    struct Consumer;

    impl Component<Toy> for Producer {
        const ROUTE: Route = Route::Producer;
        const NAME: &'static str = "producer";
        fn handle(world: &mut Toy, _now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
            let Ev::Produce(n) = event else {
                unreachable!()
            };
            world.produced += 1;
            if n > 0 {
                sched.after(SimSpan::from_nanos(5), Ev::Produce(n - 1));
            }
            sched.after(SimSpan::from_nanos(1), Ev::Consume(n));
        }
    }

    impl Component<Toy> for Consumer {
        const ROUTE: Route = Route::Consumer;
        const NAME: &'static str = "consumer";
        fn handle(world: &mut Toy, _now: SimTime, event: Ev, _sched: &mut Scheduler<Ev>) {
            let Ev::Consume(n) = event else {
                unreachable!()
            };
            world.consumed += n;
        }
    }

    impl World for Toy {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
            match event.route() {
                Route::Producer => Producer::dispatch(self, now, event, sched),
                Route::Consumer => Consumer::dispatch(self, now, event, sched),
            }
        }
    }

    #[test]
    fn routed_events_reach_their_component() {
        let mut sim = Simulation::new(Toy::default());
        sim.scheduler().at(SimTime::ZERO, Ev::Produce(3));
        sim.run();
        assert_eq!(sim.world.produced, 4); // n = 3, 2, 1, 0
        assert_eq!(sim.world.consumed, 3 + 2 + 1);
    }

    /// A consumer event handed to the producer violates the routing
    /// contract; debug builds assert before the handler ever runs.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "misrouted")]
    fn misrouted_dispatch_is_caught_in_debug() {
        let mut world = Toy::default();
        let mut sched = Scheduler::new();
        Producer::dispatch(&mut world, SimTime::ZERO, Ev::Consume(1), &mut sched);
    }
}
