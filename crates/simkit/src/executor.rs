//! The simulation run loop.
//!
//! A simulation is a [`World`] (all model state) plus a [`Scheduler`]
//! (the event queue and the clock). The world's `handle` method receives each
//! event in timestamp order and may schedule further events.
//!
//! Two executors share that contract:
//!
//! * [`Simulation`] — the classic serial loop over a monolithic
//!   [`EventQueue`], one event per step.
//! * [`ParallelSimulation`] — a batch loop over a sharded [`LaneQueue`]
//!   (requires `Event: Laned`): each step drains *every* event of the
//!   earliest timestamp and hands the batch to [`BatchWorld::handle_batch`]
//!   together with a rayon pool, so worlds can run independent per-server
//!   work concurrently while keeping results bit-identical to the serial
//!   executor (see `lane.rs` and DESIGN.md §8).

use crate::event::EventQueue;
use crate::lane::{Lane, LaneQueue, Laned, LookaheadStats};
use crate::time::{SimSpan, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// The model: owns all state and reacts to events.
pub trait World {
    type Event;

    /// Handle one event at simulation time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// A [`World`] that can additionally consume a whole same-timestamp batch,
/// typically to fan independent per-server work out on `pool`.
///
/// The default implementation dispatches the batch serially in (time, seq)
/// order, which is *definitionally* identical to [`Simulation`]; overriding
/// worlds must preserve that equivalence (the driver's two-phase tick
/// staging does — see DESIGN.md §8).
pub trait BatchWorld: World {
    fn handle_batch(
        &mut self,
        now: SimTime,
        batch: &mut Vec<Self::Event>,
        _pool: &ExecPool,
        sched: &mut Scheduler<Self::Event>,
    ) {
        for event in batch.drain(..) {
            self.handle(now, event, sched);
        }
    }
}

/// A lazily-built rayon pool handed to [`BatchWorld::handle_batch`].
///
/// The worker count is resolved at construction, but the OS threads spawn
/// only on the first [`ExecPool::get`] — a run whose every batch takes the
/// small-run bypass (all runs on a 1-core host) never pays for thread
/// creation at all.
pub struct ExecPool {
    threads: usize,
    pool: std::sync::OnceLock<rayon::ThreadPool>,
}

impl ExecPool {
    /// Resolve `threads` (`0` = one worker per available core) without
    /// building anything.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        ExecPool {
            threads,
            pool: std::sync::OnceLock::new(),
        }
    }

    /// Number of workers the pool has (or would have once built). Batch
    /// worlds use this for their pool-bypass decision without forcing the
    /// threads into existence.
    pub fn workers(&self) -> usize {
        self.threads
    }

    /// The rayon pool itself, spawning its worker threads on first use.
    pub fn get(&self) -> &rayon::ThreadPool {
        self.pool.get_or_init(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("worker threads spawn")
        })
    }
}

/// Wall-clock cost of dispatching one event label.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DispatchStat {
    /// Events dispatched under this label.
    pub events: u64,
    /// Total wall-clock seconds spent in `World::handle` for this label.
    /// Stays zero under the parallel executor, where only whole batches are
    /// timed (per-event timing inside a concurrent batch would be noise).
    pub wall_secs: f64,
}

/// Wall-clock execution profile of a run.
///
/// Strictly observational: the profile is collected entirely outside the
/// event stream (wall clock only, never fed back into the simulation), so
/// enabling it cannot perturb simulated behaviour. Labels come from a
/// caller-supplied `fn(&Event) -> &'static str`, typically the subsystem an
/// event routes to.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExecProfile {
    /// Per-label dispatch counts and (serial-mode) wall time.
    pub dispatch: BTreeMap<&'static str, DispatchStat>,
    /// Same-timestamp batches executed (parallel executor only).
    pub batches: u64,
    /// Events dispatched through batches (parallel executor only).
    pub batch_events: u64,
    /// Total wall-clock seconds spent inside `handle_batch`.
    pub batch_wall_secs: f64,
    /// Events that missed both the lane append fast path and the bounded
    /// sorted-insert (filled by callers from [`Scheduler::spilled_count`];
    /// always 0 for the heap backend).
    pub queue_spilled: u64,
    /// Lookahead-window counters (filled by callers from
    /// [`Scheduler::lookahead_stats`]; all-zero for the heap backend).
    pub lookahead: LookaheadStats,
    /// Tick-staging batches fanned out on the thread pool (filled by the
    /// batch world; the driver counts its two-phase stagings here).
    pub pool_staged: u64,
    /// Tick-staging batches run inline because they were below the adaptive
    /// pool-bypass threshold (filled by the batch world).
    pub pool_bypassed: u64,
}

impl ExecProfile {
    fn record(&mut self, label: &'static str, secs: f64) {
        let s = self.dispatch.entry(label).or_default();
        s.events += 1;
        s.wall_secs += secs;
    }

    fn count(&mut self, label: &'static str) {
        self.dispatch.entry(label).or_default().events += 1;
    }

    fn record_batch(&mut self, events: u64, secs: f64) {
        self.batches += 1;
        self.batch_events += events;
        self.batch_wall_secs += secs;
    }

    /// Total events across all labels.
    pub fn total_events(&self) -> u64 {
        self.dispatch.values().map(|s| s.events).sum()
    }

    /// Total wall seconds across all labels (serial) — see
    /// [`ExecProfile::batch_wall_secs`] for the parallel equivalent.
    pub fn total_wall_secs(&self) -> f64 {
        self.dispatch.values().map(|s| s.wall_secs).sum()
    }
}

/// Profiler state: the labelling function plus the accumulating profile.
struct Profiler<E> {
    label_of: fn(&E) -> &'static str,
    profile: ExecProfile,
}

impl<E> Profiler<E> {
    fn new(label_of: fn(&E) -> &'static str) -> Self {
        Profiler {
            label_of,
            profile: ExecProfile::default(),
        }
    }
}

/// The pending-event store behind a [`Scheduler`]: one monolithic heap, or
/// per-server lanes with a deterministic merge. Pop order is identical.
// One Backend lives per scheduler, never in collections, so the size gap
// between the two variants costs nothing worth an indirection on every
// queue access.
#[allow(clippy::large_enum_variant)]
enum Backend<E> {
    Heap(EventQueue<E>),
    Lanes(LaneQueue<E>),
}

/// Handle to one scheduled event, returned by [`Scheduler::at_cancellable`]
/// and consumed by [`Scheduler::cancel`]. Wraps the event's global seq.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle(u64);

/// The clock plus the pending-event queue, handed to the world on every event.
pub struct Scheduler<E> {
    now: SimTime,
    queue: Backend<E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: Backend::Heap(EventQueue::new()),
        }
    }

    /// A scheduler backed by a sharded [`LaneQueue`] with an explicit
    /// lane-key function. Pop order is identical to [`Scheduler::new`].
    pub fn with_lanes(lane_of: fn(&E) -> Lane) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: Backend::Lanes(LaneQueue::new(lane_of)),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past: causality violations are model bugs.
    pub fn at(&mut self, at: SimTime, event: E) {
        let _ = self.at_cancellable(at, event);
    }

    /// Schedule `event` at absolute time `at` and return a handle that can
    /// revoke it while it is still pending.
    ///
    /// Panics if `at` is in the past: causality violations are model bugs.
    pub fn at_cancellable(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let seq = match &mut self.queue {
            Backend::Heap(q) => q.push(at, event),
            Backend::Lanes(q) => q.push(at, event),
        };
        EventHandle(seq)
    }

    /// Revoke a pending event: it is tombstoned in place and will never be
    /// dispatched (nor counted by [`Scheduler::dispatched_count`]).
    ///
    /// The caller must guarantee the handle's event is still pending —
    /// cancelling an already-dispatched handle corrupts the queue's length
    /// accounting. Holders of a handle therefore clear it the moment the
    /// event fires.
    pub fn cancel(&mut self, handle: EventHandle) {
        match &mut self.queue {
            Backend::Heap(q) => q.cancel(handle.0),
            Backend::Lanes(q) => q.cancel(handle.0),
        }
    }

    /// Schedule `event` after a delay of `span`.
    ///
    /// Routed through the same causality assertion as [`Scheduler::at`], so
    /// an overflowed `now + span` cannot silently schedule into the past.
    pub fn after(&mut self, span: SimSpan, event: E) {
        let at = self.now + span;
        self.at(at, event);
    }

    /// Schedule `event` at the current instant (processed after the events
    /// already queued for this instant).
    pub fn immediately(&mut self, event: E) {
        let now = self.now;
        self.at(now, event);
    }

    pub fn pending(&self) -> usize {
        match &self.queue {
            Backend::Heap(q) => q.len(),
            Backend::Lanes(q) => q.len(),
        }
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_count(&self) -> u64 {
        match &self.queue {
            Backend::Heap(q) => q.scheduled_count(),
            Backend::Lanes(q) => q.scheduled_count(),
        }
    }

    /// Total number of events ever dispatched.
    pub fn dispatched_count(&self) -> u64 {
        match &self.queue {
            Backend::Heap(q) => q.dispatched_count(),
            Backend::Lanes(q) => q.dispatched_count(),
        }
    }

    /// Number of out-of-order pushes that landed in lane spill heaps
    /// (always 0 for the monolithic heap backend). A cheap health signal:
    /// high spill rates mean the per-lane FIFO fast path is being defeated.
    pub fn spilled_count(&self) -> u64 {
        match &self.queue {
            Backend::Heap(_) => 0,
            Backend::Lanes(q) => q.spilled_count(),
        }
    }

    /// Total number of events ever cancelled.
    pub fn cancelled_count(&self) -> u64 {
        match &self.queue {
            Backend::Heap(q) => q.cancelled_count(),
            Backend::Lanes(q) => q.cancelled_count(),
        }
    }

    /// Lookahead-window counters (all-zero for the heap backend, which has
    /// no window).
    pub fn lookahead_stats(&self) -> LookaheadStats {
        match &self.queue {
            Backend::Heap(_) => LookaheadStats::default(),
            Backend::Lanes(q) => q.lookahead_stats(),
        }
    }

    /// Seed the lane queue's adaptive lookahead horizon (nanoseconds).
    /// Purely a performance hint — dispatch order is identical for any
    /// value. No-op for the heap backend.
    pub fn set_lookahead_horizon(&mut self, ns: u64) {
        if let Backend::Lanes(q) = &mut self.queue {
            q.set_lookahead_horizon(ns);
        }
    }

    /// Timestamp of the earliest pending event, if any.
    fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.queue {
            Backend::Heap(q) => q.peek_time(),
            Backend::Lanes(q) => q.peek_time(),
        }
    }

    /// Pop the earliest event and advance the clock to it.
    fn pop_event(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = match &mut self.queue {
            Backend::Heap(q) => q.pop(),
            Backend::Lanes(q) => q.pop(),
        }?;
        debug_assert!(t >= self.now);
        self.now = t;
        Some((t, ev))
    }

    /// Pop *every* event of the earliest timestamp into `out` (in (time,
    /// seq) order), advance the clock to it, and return it.
    fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let t = match &mut self.queue {
            Backend::Heap(q) => {
                let (t, ev) = q.pop()?;
                out.push(ev);
                while q.peek_time() == Some(t) {
                    out.push(q.pop().expect("peeked entry").1);
                }
                t
            }
            Backend::Lanes(q) => q.pop_batch(out)?,
        };
        debug_assert!(t >= self.now);
        self.now = t;
        Some(t)
    }
}

/// Drives a [`World`] to completion or to a deadline, one event at a time.
pub struct Simulation<W: World> {
    pub world: W,
    sched: Scheduler<W::Event>,
    profiler: Option<Profiler<W::Event>>,
}

impl<W: World> Simulation<W> {
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            profiler: None,
        }
    }

    /// Measure wall-clock time per event dispatch, grouped by `label_of`.
    /// Purely observational — the event stream is untouched.
    pub fn enable_profiling(&mut self, label_of: fn(&W::Event) -> &'static str) {
        self.profiler = Some(Profiler::new(label_of));
    }

    /// Take the accumulated profile (if profiling was enabled).
    pub fn take_profile(&mut self) -> Option<ExecProfile> {
        self.profiler.take().map(|p| p.profile)
    }

    /// Access the scheduler, e.g. to seed initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Dispatch a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop_event() {
            Some((t, ev)) => {
                match &mut self.profiler {
                    Some(p) => {
                        let label = (p.label_of)(&ev);
                        let t0 = Instant::now();
                        self.world.handle(t, ev, &mut self.sched);
                        p.profile.record(label, t0.elapsed().as_secs_f64());
                    }
                    None => self.world.handle(t, ev, &mut self.sched),
                }
                true
            }
            None => false,
        }
    }

    /// Run until no events remain. Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.sched.now
    }

    /// Run until no events remain or the clock passes `deadline`.
    ///
    /// Events stamped after `deadline` stay queued; the clock is left at the
    /// last dispatched event (or `deadline` if nothing ran past it).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.sched.now
    }
}

/// Drives a [`BatchWorld`] over a sharded [`LaneQueue`], one whole
/// timestamp per step, with a rayon pool for intra-batch parallelism.
///
/// Results are bit-identical to [`Simulation`] at any thread count: the
/// lane queue reproduces the heap's exact pop order, and `handle_batch`
/// implementations are required to preserve serial-equivalent semantics.
pub struct ParallelSimulation<W: BatchWorld>
where
    W::Event: Laned,
{
    pub world: W,
    sched: Scheduler<W::Event>,
    pool: ExecPool,
    scratch: Vec<W::Event>,
    profiler: Option<Profiler<W::Event>>,
}

impl<W: BatchWorld> ParallelSimulation<W>
where
    W::Event: Laned,
{
    /// One worker per available core (a single worker on 1-core hosts).
    pub fn new(world: W) -> Self {
        Self::with_threads(world, 0)
    }

    /// Explicit worker count; `0` means one per available core. Worker
    /// threads spawn lazily, on the first batch a world actually pools.
    pub fn with_threads(world: W, threads: usize) -> Self {
        let pool = ExecPool::new(threads);
        ParallelSimulation {
            world,
            sched: Scheduler::with_lanes(<W::Event as Laned>::lane),
            pool,
            scratch: Vec::new(),
            profiler: None,
        }
    }

    /// Count event labels and measure wall-clock time per same-timestamp
    /// batch. Purely observational — the event stream is untouched. Per-label
    /// wall time is not collected in batch mode (see [`DispatchStat`]).
    pub fn enable_profiling(&mut self, label_of: fn(&W::Event) -> &'static str) {
        self.profiler = Some(Profiler::new(label_of));
    }

    /// Take the accumulated profile (if profiling was enabled).
    pub fn take_profile(&mut self) -> Option<ExecProfile> {
        self.profiler.take().map(|p| p.profile)
    }

    /// Access the scheduler, e.g. to seed initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.workers()
    }

    /// Seed the lane queue's adaptive lookahead horizon (nanoseconds) — a
    /// performance hint only; results are bit-identical for any value.
    pub fn set_lookahead_horizon(&mut self, ns: u64) {
        self.sched.set_lookahead_horizon(ns);
    }

    /// Dispatch one whole timestamp. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let mut batch = std::mem::take(&mut self.scratch);
        batch.clear();
        let stepped = match self.sched.pop_batch(&mut batch) {
            Some(t) => {
                match &mut self.profiler {
                    Some(p) => {
                        for ev in batch.iter() {
                            p.profile.count((p.label_of)(ev));
                        }
                        let n = batch.len() as u64;
                        let t0 = Instant::now();
                        self.world
                            .handle_batch(t, &mut batch, &self.pool, &mut self.sched);
                        p.profile.record_batch(n, t0.elapsed().as_secs_f64());
                    }
                    None => {
                        self.world
                            .handle_batch(t, &mut batch, &self.pool, &mut self.sched);
                    }
                }
                debug_assert!(batch.is_empty(), "handle_batch must drain its batch");
                true
            }
            None => false,
        };
        self.scratch = batch;
        stepped
    }

    /// Run until no events remain. Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.sched.now
    }

    /// Run until no events remain or the clock passes `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.sched.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::Lane;

    /// A world that re-schedules a decrementing counter.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl World for Countdown {
        type Event = ();
        fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimSpan::from_nanos(10), ());
            }
        }
    }

    #[test]
    fn run_drains_queue() {
        let mut sim = Simulation::new(Countdown {
            remaining: 3,
            fired_at: vec![],
        });
        sim.scheduler().at(SimTime::from_nanos(5), ());
        let end = sim.run();
        assert_eq!(end, SimTime::from_nanos(35));
        assert_eq!(
            sim.world.fired_at,
            vec![5, 15, 25, 35]
                .into_iter()
                .map(SimTime::from_nanos)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Countdown {
            remaining: 100,
            fired_at: vec![],
        });
        sim.scheduler().at(SimTime::ZERO, ());
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(sim.world.fired_at.len(), 3); // t = 0, 10, 20
        assert!(sim.scheduler().pending() > 0);
    }

    #[test]
    fn immediately_runs_after_current_instant_events() {
        struct Rec(Vec<&'static str>);
        impl World for Rec {
            type Event = &'static str;
            fn handle(
                &mut self,
                _t: SimTime,
                ev: &'static str,
                sched: &mut Scheduler<&'static str>,
            ) {
                self.0.push(ev);
                if ev == "first" {
                    sched.immediately("injected");
                }
            }
        }
        let mut sim = Simulation::new(Rec(vec![]));
        sim.scheduler().at(SimTime::ZERO, "first");
        sim.scheduler().at(SimTime::ZERO, "second");
        sim.run();
        assert_eq!(sim.world.0, vec!["first", "second", "injected"]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, _t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.at(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.scheduler().at(SimTime::from_nanos(10), ());
        sim.run();
    }

    #[test]
    fn after_with_overflowing_span_saturates_to_far_future() {
        // `now + span` saturates at SimTime::MAX, and `after` routes through
        // `at`'s causality assertion — an overflowed span can therefore only
        // land in the far future, never silently in the past.
        struct Once {
            scheduled: bool,
            fired_at: Option<SimTime>,
        }
        impl World for Once {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                if !self.scheduled {
                    self.scheduled = true;
                    sched.after(SimSpan::MAX, ());
                } else {
                    self.fired_at = Some(now);
                }
            }
        }
        let mut sim = Simulation::new(Once {
            scheduled: false,
            fired_at: None,
        });
        sim.scheduler().at(SimTime::from_nanos(10), ());
        sim.run();
        assert_eq!(sim.world.fired_at, Some(SimTime::MAX));
    }

    #[test]
    fn step_returns_false_when_idle() {
        let mut sim = Simulation::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn profiling_observes_without_perturbing() {
        let run = |profile: bool| {
            let mut sim = Simulation::new(Countdown {
                remaining: 5,
                fired_at: vec![],
            });
            if profile {
                sim.enable_profiling(|_| "tick");
            }
            sim.scheduler().at(SimTime::ZERO, ());
            sim.run();
            let prof = sim.take_profile();
            (sim.world.fired_at, prof)
        };
        let (plain, none) = run(false);
        let (profiled, prof) = run(true);
        assert_eq!(
            plain, profiled,
            "profiling must not change the event stream"
        );
        assert!(none.is_none());
        let prof = prof.expect("profile collected");
        assert_eq!(prof.total_events(), 6);
        assert_eq!(prof.dispatch["tick"].events, 6);
        assert!(prof.total_wall_secs() >= 0.0);
    }

    #[test]
    fn parallel_profiling_counts_batches() {
        let world = PingWorld {
            rounds: 10,
            servers: 4,
            order: vec![],
        };
        let mut sim = ParallelSimulation::with_threads(world, 2);
        sim.enable_profiling(|_| "ping");
        for s in 0..4 {
            sim.scheduler().at(SimTime::ZERO, Ping(s));
        }
        sim.run();
        let prof = sim.take_profile().expect("profile collected");
        assert_eq!(prof.dispatch["ping"].events, prof.batch_events);
        assert!(prof.batches > 0);
        assert_eq!(prof.dispatch["ping"].wall_secs, 0.0);
        assert_eq!(sim.scheduler().spilled_count(), 0);
    }

    #[test]
    fn cancelled_event_is_not_dispatched() {
        struct Rec(Vec<&'static str>);
        impl World for Rec {
            type Event = &'static str;
            fn handle(&mut self, _t: SimTime, ev: &'static str, _s: &mut Scheduler<&'static str>) {
                self.0.push(ev);
            }
        }
        let mut sim = Simulation::new(Rec(vec![]));
        let h = sim
            .scheduler()
            .at_cancellable(SimTime::from_nanos(10), "doomed");
        sim.scheduler().at(SimTime::from_nanos(20), "kept");
        sim.scheduler().cancel(h);
        sim.run();
        assert_eq!(sim.world.0, vec!["kept"]);
        assert_eq!(sim.scheduler().scheduled_count(), 2);
        assert_eq!(sim.scheduler().dispatched_count(), 1);
        assert_eq!(sim.scheduler().cancelled_count(), 1);
    }

    #[test]
    fn scheduled_count_is_visible() {
        let mut sim = Simulation::new(Countdown {
            remaining: 2,
            fired_at: vec![],
        });
        sim.scheduler().at(SimTime::ZERO, ());
        sim.run();
        assert_eq!(sim.scheduler().scheduled_count(), 3);
        assert_eq!(sim.scheduler().dispatched_count(), 3);
    }

    // ----- parallel executor -----

    /// Per-server ping events, recorded in dispatch order.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ping(usize);

    impl Laned for Ping {
        fn lane(&self) -> Lane {
            if self.0 == 0 {
                Lane::Global
            } else {
                Lane::Server(self.0 - 1)
            }
        }
    }

    struct PingWorld {
        rounds: u32,
        servers: usize,
        order: Vec<(SimTime, usize)>,
    }

    impl World for PingWorld {
        type Event = Ping;
        fn handle(&mut self, now: SimTime, ev: Ping, sched: &mut Scheduler<Ping>) {
            self.order.push((now, ev.0));
            if self.rounds > 0 {
                if ev.0 == self.servers - 1 {
                    self.rounds -= 1;
                }
                sched.after(SimSpan::from_nanos(100), ev);
            }
        }
    }

    impl BatchWorld for PingWorld {}

    fn ping_order(threads: usize) -> Vec<(SimTime, usize)> {
        let world = PingWorld {
            rounds: 50,
            servers: 8,
            order: vec![],
        };
        let mut sim = ParallelSimulation::with_threads(world, threads);
        for s in 0..8 {
            sim.scheduler().at(SimTime::ZERO, Ping(s));
        }
        sim.run();
        sim.world.order
    }

    #[test]
    fn parallel_executor_matches_serial_dispatch_order() {
        let world = PingWorld {
            rounds: 50,
            servers: 8,
            order: vec![],
        };
        let mut serial = Simulation::new(world);
        for s in 0..8 {
            serial.scheduler().at(SimTime::ZERO, Ping(s));
        }
        serial.run();
        assert_eq!(serial.world.order, ping_order(1));
        assert_eq!(serial.world.order, ping_order(2));
        assert_eq!(serial.world.order, ping_order(8));
    }

    #[test]
    fn parallel_run_until_respects_deadline() {
        let world = PingWorld {
            rounds: 1_000,
            servers: 4,
            order: vec![],
        };
        let mut sim = ParallelSimulation::with_threads(world, 2);
        for s in 0..4 {
            sim.scheduler().at(SimTime::ZERO, Ping(s));
        }
        sim.run_until(SimTime::from_nanos(250));
        // Timestamps 0, 100, 200 → 3 batches of 4 events.
        assert_eq!(sim.world.order.len(), 12);
        assert!(sim.scheduler().pending() > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::lane::{Lane, Laned};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// What handling an event does: where its follow-ups land and whether it
    /// revokes a pending future event.
    #[derive(Debug, Clone, Copy)]
    struct Row {
        lane: u8,
        delay_a: u64,
        delay_b: Option<u64>,
        cancel: bool,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Step {
        id: usize,
        lane: u8,
    }

    impl Laned for Step {
        fn lane(&self) -> Lane {
            match self.lane {
                0 => Lane::Global,
                k => Lane::Server((k - 1) as usize),
            }
        }
    }

    /// A world whose behaviour is a pure function of a script, so any two
    /// executors that dispatch in the same order evolve identically.
    struct ScriptWorld {
        script: Vec<Row>,
        next_id: usize,
        budget: usize,
        /// Handles of scheduled-but-unfired follow-ups, cleared on dispatch
        /// (the same discipline the driver uses for `net_armed`).
        pending: BTreeMap<usize, (SimTime, EventHandle)>,
        order: Vec<(SimTime, usize)>,
    }

    impl ScriptWorld {
        fn new(script: Vec<Row>, budget: usize, seeds: usize) -> Self {
            ScriptWorld {
                script,
                next_id: seeds,
                budget,
                pending: BTreeMap::new(),
                order: vec![],
            }
        }

        fn row(&self, id: usize) -> Row {
            self.script[id % self.script.len()]
        }
    }

    impl World for ScriptWorld {
        type Event = Step;
        fn handle(&mut self, now: SimTime, ev: Step, sched: &mut Scheduler<Step>) {
            self.order.push((now, ev.id));
            self.pending.remove(&ev.id);
            let row = self.row(ev.id);
            if row.cancel {
                // Batch worlds may only cancel *strictly future* events —
                // same-instant peers are already popped into the batch. A
                // future victim may still sit inside the lookahead window,
                // which is the path this exercises.
                let victim = self
                    .pending
                    .iter()
                    .find(|(_, (t, _))| *t > now)
                    .map(|(&id, _)| id);
                if let Some(id) = victim {
                    let (_, h) = self.pending.remove(&id).expect("keyed");
                    sched.cancel(h);
                }
            }
            for delay in [Some(row.delay_a), row.delay_b].into_iter().flatten() {
                if self.budget == 0 {
                    break;
                }
                self.budget -= 1;
                let id = self.next_id;
                self.next_id += 1;
                let lane = self.row(id).lane;
                let at = now + SimSpan::from_nanos(delay);
                let h = sched.at_cancellable(at, Step { id, lane });
                self.pending.insert(id, (at, h));
            }
        }
    }

    impl BatchWorld for ScriptWorld {}

    fn rows() -> impl Strategy<Value = Vec<(u8, u64, Option<u64>, bool)>> {
        proptest::collection::vec(
            (
                0u8..5,
                0u64..60,
                (0u64..120).prop_map(|v| if v < 60 { Some(v) } else { None }),
                (0u8..2).prop_map(|b| b == 1),
            ),
            1..16,
        )
    }

    fn run_script(
        script: &[Row],
        threads: Option<usize>,
        horizon: u64,
    ) -> (Vec<(SimTime, usize)>, u64) {
        let seeds = script.len().min(3);
        let world = ScriptWorld::new(script.to_vec(), 150, seeds);
        let seed_evs: Vec<Step> = (0..seeds)
            .map(|i| Step {
                id: i,
                lane: script[i].lane,
            })
            .collect();
        match threads {
            None => {
                let mut sim = Simulation::new(world);
                for (i, ev) in seed_evs.into_iter().enumerate() {
                    sim.scheduler().at(SimTime::from_nanos(7 * i as u64), ev);
                }
                sim.run();
                let n = sim.scheduler().dispatched_count();
                (sim.world.order, n)
            }
            Some(t) => {
                let mut sim = ParallelSimulation::with_threads(world, t);
                sim.set_lookahead_horizon(horizon);
                for (i, ev) in seed_evs.into_iter().enumerate() {
                    sim.scheduler().at(SimTime::from_nanos(7 * i as u64), ev);
                }
                sim.run();
                let n = sim.scheduler().dispatched_count();
                (sim.world.order, n)
            }
        }
    }

    proptest! {
        /// Windowed batch execution is bit-identical to the serial executor
        /// for arbitrary scripted worlds (cascading follow-ups, zero-delay
        /// re-schedules, future-event cancels) across lookahead horizons and
        /// thread counts.
        #[test]
        fn windowed_execution_matches_serial(
            rows_raw in rows(),
            horizon in (0u64..4).prop_map(|k| [0, 13, 40, 1_000_000][k as usize]),
        ) {
            let script: Vec<Row> = rows_raw
                .into_iter()
                .map(|(lane, delay_a, delay_b, cancel)| Row { lane, delay_a, delay_b, cancel })
                .collect();
            let (serial_order, serial_n) = run_script(&script, None, 0);
            for threads in [1, 2, 8] {
                let (order, n) = run_script(&script, Some(threads), horizon);
                prop_assert_eq!(&order, &serial_order, "threads={}", threads);
                prop_assert_eq!(n, serial_n, "threads={}", threads);
            }
        }
    }
}
