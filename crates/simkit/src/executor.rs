//! The simulation run loop.
//!
//! A simulation is a [`World`] (all model state) plus a [`Scheduler`]
//! (the event queue and the clock). The world's `handle` method receives each
//! event in timestamp order and may schedule further events.

use crate::event::EventQueue;
use crate::time::{SimSpan, SimTime};

/// The model: owns all state and reacts to events.
pub trait World {
    type Event;

    /// Handle one event at simulation time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The clock plus the pending-event queue, handed to the world on every event.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics if `at` is in the past: causality violations are model bugs.
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` after a delay of `span`.
    pub fn after(&mut self, span: SimSpan, event: E) {
        self.queue.push(self.now + span, event);
    }

    /// Schedule `event` at the current instant (processed after the events
    /// already queued for this instant).
    pub fn immediately(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    pub fn dispatched_count(&self) -> u64 {
        self.queue.dispatched_count()
    }
}

/// Drives a [`World`] to completion or to a deadline.
pub struct Simulation<W: World> {
    pub world: W,
    sched: Scheduler<W::Event>,
}

impl<W: World> Simulation<W> {
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Access the scheduler, e.g. to seed initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Dispatch a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.queue.pop() {
            Some((t, ev)) => {
                debug_assert!(t >= self.sched.now);
                self.sched.now = t;
                self.world.handle(t, ev, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Run until no events remain. Returns the final simulation time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.sched.now
    }

    /// Run until no events remain or the clock passes `deadline`.
    ///
    /// Events stamped after `deadline` stay queued; the clock is left at the
    /// last dispatched event (or `deadline` if nothing ran past it).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.sched.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.sched.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that re-schedules a decrementing counter.
    struct Countdown {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl World for Countdown {
        type Event = ();
        fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimSpan::from_nanos(10), ());
            }
        }
    }

    #[test]
    fn run_drains_queue() {
        let mut sim = Simulation::new(Countdown {
            remaining: 3,
            fired_at: vec![],
        });
        sim.scheduler().at(SimTime::from_nanos(5), ());
        let end = sim.run();
        assert_eq!(end, SimTime::from_nanos(35));
        assert_eq!(
            sim.world.fired_at,
            vec![5, 15, 25, 35]
                .into_iter()
                .map(SimTime::from_nanos)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Countdown {
            remaining: 100,
            fired_at: vec![],
        });
        sim.scheduler().at(SimTime::ZERO, ());
        sim.run_until(SimTime::from_nanos(25));
        assert_eq!(sim.world.fired_at.len(), 3); // t = 0, 10, 20
        assert!(sim.scheduler().pending() > 0);
    }

    #[test]
    fn immediately_runs_after_current_instant_events() {
        struct Rec(Vec<&'static str>);
        impl World for Rec {
            type Event = &'static str;
            fn handle(
                &mut self,
                _t: SimTime,
                ev: &'static str,
                sched: &mut Scheduler<&'static str>,
            ) {
                self.0.push(ev);
                if ev == "first" {
                    sched.immediately("injected");
                }
            }
        }
        let mut sim = Simulation::new(Rec(vec![]));
        sim.scheduler().at(SimTime::ZERO, "first");
        sim.scheduler().at(SimTime::ZERO, "second");
        sim.run();
        assert_eq!(sim.world.0, vec!["first", "second", "injected"]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, _t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.at(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.scheduler().at(SimTime::from_nanos(10), ());
        sim.run();
    }

    #[test]
    fn step_returns_false_when_idle() {
        let mut sim = Simulation::new(Countdown {
            remaining: 0,
            fired_at: vec![],
        });
        assert!(!sim.step());
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}
