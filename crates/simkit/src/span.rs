//! Causal span chains: an exact additive decomposition of an interval.
//!
//! A [`SpanChain`] records a sequence of [`Hop`]s that *tile* the interval
//! from the chain's origin to its cursor: each recorded hop starts exactly
//! where the previous one ended, so the per-hop elapsed times sum to the
//! end-to-end elapsed time by construction — no reconciliation pass, no
//! drift. Worlds use this to answer "where did this request's time go"
//! with an attribution that is additive to the nanosecond.
//!
//! Each hop splits its elapsed time into *service* (the time the hop would
//! have taken on an idle resource) and *wait* (everything beyond that,
//! tagged with a caller-supplied cause). The split is
//! `service = min(elapsed, ideal)`, `wait = elapsed - service`, so
//! `service + wait == elapsed` always holds — even when jittered resources
//! finish *faster* than the nominal ideal (the wait clamps at zero rather
//! than going negative).
//!
//! The *ideal* for a hop is usually known when the work is submitted
//! (e.g. a disk's solo service time), long before the completion event that
//! records the hop. [`SpanChain::arm`] stages that ideal on the chain; the
//! next [`SpanChain::record`] consumes it. Hops with zero elapsed time are
//! dropped (the tiling is unaffected), which keeps instantaneous
//! transitions — an admission that succeeds immediately, a zero-latency
//! delivery — out of the breakdown.
//!
//! The chain is generic over the hop-kind type `K` and the wait-cause type
//! `C`; simkit attaches no meaning to either. Determinism is inherited
//! from the caller: hops are recorded inside event handlers, which the
//! executors replay in an identical total order on every backend.

use crate::SimTime;
use serde::Serialize;

/// One tile of a [`SpanChain`]: the interval `[start, end]` spent at hop
/// `kind` on `node`, split into service and wait seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop<K, C> {
    pub kind: K,
    /// Node the hop ran on (the resource's node, not necessarily the
    /// requester's).
    pub node: usize,
    pub start: SimTime,
    pub end: SimTime,
    /// Time the hop would have taken on an idle resource, capped at the
    /// elapsed time.
    pub service_secs: f64,
    /// Elapsed time beyond the service time.
    pub wait_secs: f64,
    /// Why the wait happened; `None` when `wait_secs == 0`.
    pub cause: Option<C>,
}

impl<K, C> Hop<K, C> {
    /// `end - start` in seconds; equals `service_secs + wait_secs` exactly.
    pub fn elapsed_secs(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

// Hand-written because the derive does not add bounds for generic params;
// the cause is skipped when `None`, mirroring `skip_serializing_if`.
impl<K: Serialize, C: Serialize> Serialize for Hop<K, C> {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("kind".to_string(), self.kind.to_value()),
            ("node".to_string(), self.node.to_value()),
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
            ("service_secs".to_string(), self.service_secs.to_value()),
            ("wait_secs".to_string(), self.wait_secs.to_value()),
        ];
        if let Some(c) = &self.cause {
            fields.push(("cause".to_string(), c.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// A contiguous chain of [`Hop`]s. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanChain<K, C> {
    origin: SimTime,
    cursor: SimTime,
    armed_ideal_secs: f64,
    hops: Vec<Hop<K, C>>,
}

impl<K, C> SpanChain<K, C> {
    /// An empty chain whose first hop will start at `at`.
    pub fn start(at: SimTime) -> Self {
        SpanChain {
            origin: at,
            cursor: at,
            armed_ideal_secs: 0.0,
            hops: Vec::new(),
        }
    }

    pub fn origin(&self) -> SimTime {
        self.origin
    }

    /// Where the next hop will start.
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// Stage the ideal (idle-resource) duration for the hop that the next
    /// [`record`](Self::record) closes. Overwrites any previously armed
    /// value; `record` consumes it.
    pub fn arm(&mut self, ideal_secs: f64) {
        debug_assert!(ideal_secs >= 0.0, "armed ideal must be non-negative");
        self.armed_ideal_secs = ideal_secs;
    }

    /// Close the hop `[cursor, end]` as `kind` on `node`, consuming the
    /// armed ideal. Returns `(service_secs, wait_secs, cause)` for the
    /// recorded hop, or `None` when the hop had zero elapsed time (it is
    /// dropped; the cause is discarded). The cause is kept only when the
    /// hop actually waited.
    pub fn record(
        &mut self,
        kind: K,
        node: usize,
        end: SimTime,
        cause: Option<C>,
    ) -> Option<(f64, f64, Option<C>)>
    where
        C: Clone,
    {
        debug_assert!(end >= self.cursor, "span hops must advance in time");
        let start = self.cursor;
        let ideal = std::mem::replace(&mut self.armed_ideal_secs, 0.0);
        if end <= start {
            return None;
        }
        let elapsed = (end - start).as_secs_f64();
        let service = elapsed.min(ideal);
        let wait = elapsed - service;
        let cause = if wait > 0.0 { cause } else { None };
        self.cursor = end;
        self.hops.push(Hop {
            kind,
            node,
            start,
            end,
            service_secs: service,
            wait_secs: wait,
            cause: cause.clone(),
        });
        Some((service, wait, cause))
    }

    /// Close the hop `[cursor, end]` as pure service time (no wait, no
    /// cause) — for hops whose elapsed time *is* their ideal, like a fixed
    /// network latency. Discards any armed ideal.
    pub fn record_service(&mut self, kind: K, node: usize, end: SimTime) -> Option<(f64, f64)>
    where
        C: Clone,
    {
        self.arm(f64::INFINITY);
        self.record(kind, node, end, None).map(|(s, w, _)| (s, w))
    }

    pub fn hops(&self) -> &[Hop<K, C>] {
        &self.hops
    }

    pub fn into_hops(self) -> Vec<Hop<K, C>> {
        self.hops
    }

    /// `cursor - origin` in seconds: the span the recorded hops tile.
    pub fn end_to_end_secs(&self) -> f64 {
        (self.cursor - self.origin).as_secs_f64()
    }

    pub fn total_service_secs(&self) -> f64 {
        self.hops.iter().map(|h| h.service_secs).sum()
    }

    pub fn total_wait_secs(&self) -> f64 {
        self.hops.iter().map(|h| h.wait_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn hops_tile_the_interval() {
        let mut ch: SpanChain<&'static str, &'static str> = SpanChain::start(t(1.0));
        ch.arm(0.5);
        ch.record("disk", 0, t(2.0), Some("queue"));
        ch.record("slot", 0, t(2.25), Some("slot"));
        ch.arm(1.0);
        ch.record("kernel", 0, t(3.25), Some("share"));
        assert_eq!(ch.hops().len(), 3);
        for pair in ch.hops().windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "hops must be contiguous");
        }
        assert_eq!(ch.hops()[0].start, ch.origin());
        assert_eq!(ch.hops().last().unwrap().end, ch.cursor());
        let sum = ch.total_service_secs() + ch.total_wait_secs();
        assert!((sum - ch.end_to_end_secs()).abs() < 1e-12);
    }

    #[test]
    fn service_wait_split_consumes_armed_ideal() {
        let mut ch: SpanChain<&'static str, &'static str> = SpanChain::start(t(0.0));
        ch.arm(0.4);
        let (svc, wait, cause) = ch.record("disk", 3, t(1.0), Some("queue")).unwrap();
        assert!((svc - 0.4).abs() < 1e-12);
        assert!((wait - 0.6).abs() < 1e-12);
        assert_eq!(cause, Some("queue"));
        // The ideal was consumed: the next hop defaults to all-wait.
        let (svc, wait, _) = ch.record("slot", 3, t(1.5), Some("slot")).unwrap();
        assert_eq!(svc, 0.0);
        assert!((wait - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wait_clamps_when_faster_than_ideal() {
        // A jittered resource can beat its nominal ideal; the wait must
        // clamp at zero instead of going negative.
        let mut ch: SpanChain<&'static str, &'static str> = SpanChain::start(t(0.0));
        ch.arm(2.0);
        let (svc, wait, cause) = ch.record("net", 1, t(1.0), Some("share")).unwrap();
        assert!((svc - 1.0).abs() < 1e-12);
        assert_eq!(wait, 0.0);
        assert_eq!(cause, None, "no wait, no cause");
    }

    #[test]
    fn zero_elapsed_hops_are_dropped() {
        let mut ch: SpanChain<&'static str, &'static str> = SpanChain::start(t(1.0));
        assert!(ch.record("noop", 0, t(1.0), Some("queue")).is_none());
        assert!(ch.hops().is_empty());
        assert_eq!(ch.cursor(), t(1.0));
        ch.record_service("hop", 0, t(2.0));
        assert_eq!(ch.hops().len(), 1);
        assert_eq!(ch.hops()[0].wait_secs, 0.0);
    }

    #[test]
    fn record_service_is_pure_service() {
        let mut ch: SpanChain<&'static str, &'static str> = SpanChain::start(t(0.0));
        ch.arm(0.1); // a stale armed ideal must not leak into a service hop
        let (svc, wait) = ch.record_service("deliver", 2, t(0.5)).unwrap();
        assert!((svc - 0.5).abs() < 1e-12);
        assert_eq!(wait, 0.0);
    }
}
