//! Simulation clock: integer nanoseconds.
//!
//! Integer time keeps the event order total and platform-independent;
//! floating-point timestamps accumulate rounding that can flip event order
//! between runs. Durations derived from floating-point work amounts are
//! rounded *up* to the next nanosecond so work never finishes early.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimSpan(u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a sentinel for "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Construct from seconds, rounding up to the next nanosecond.
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(other.0))
    }
}

impl SimSpan {
    pub const ZERO: SimSpan = SimSpan(0);
    pub const MAX: SimSpan = SimSpan(u64::MAX);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimSpan(ns)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Construct from seconds, rounding up to the next nanosecond.
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimSpan(secs_to_nanos(secs))
    }

    pub fn from_micros(us: u64) -> Self {
        SimSpan(us * 1_000)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimSpan(ms * 1_000_000)
    }

    pub fn from_secs(s: u64) -> Self {
        SimSpan(s * NANOS_PER_SEC)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time from seconds must be finite and non-negative, got {secs}"
    );
    let ns = secs * NANOS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.ceil() as u64
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimSpan> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    /// Panics (in debug) if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimSpan {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimSpan(self.0 - rhs.0)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimSpan {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimSpan::default(), SimSpan::ZERO);
    }

    #[test]
    fn from_secs_rounds_up() {
        // 1.5 ns worth of seconds must round up to 2 ns.
        let t = SimTime::from_secs_f64(1.5e-9);
        assert_eq!(t.as_nanos(), 2);
        assert_eq!(SimSpan::from_secs_f64(0.0), SimSpan::ZERO);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimTime::from_nanos(100);
        let s = SimSpan::from_nanos(42);
        assert_eq!((a + s) - a, s);
        let mut b = a;
        b += s;
        assert_eq!(b, a + s);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimSpan::from_nanos(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_nanos(5).saturating_sub(SimTime::from_nanos(9)),
            SimSpan::ZERO
        );
    }

    #[test]
    fn second_conversions() {
        assert_eq!(SimSpan::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimSpan::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimSpan::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panic() {
        let _ = SimSpan::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimSpan::from_nanos(1) < SimSpan::from_nanos(2));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "1.500000s");
        assert_eq!(format!("{}", SimSpan::from_millis(250)), "0.250000s");
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(SimTime::from_secs_f64(f64::MAX.sqrt()), SimTime::MAX);
    }
}
