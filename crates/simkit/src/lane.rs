//! Sharded event queue: one FIFO-stable lane per storage server.
//!
//! [`LaneQueue`] splits the pending-event set into per-server lanes plus one
//! global lane (rank/control traffic), keyed by [`Laned`]. Every push is
//! stamped with the same global `(time, seq)` key the monolithic
//! [`EventQueue`](crate::EventQueue) uses, and pops always take the minimum
//! key across lanes — so the pop order is *identical* to the single heap
//! (proven by the proptest oracle below and by the golden-metrics suite).
//!
//! Why it is faster than one big heap:
//!
//! * Ticks for one server are scheduled in almost-nondecreasing time order,
//!   so each lane is a plain `VecDeque` with O(1) push/pop; the rare
//!   out-of-order push (e.g. a share-resource completion moving *earlier*
//!   after an interrupt) lands in a small per-lane spill heap.
//! * [`LaneQueue::pop_batch`] drains a whole timestamp at once: one O(lanes)
//!   head scan amortised over every event in the batch, instead of an
//!   O(log n) heap sift per event. Tick-dominated phases, where most lanes
//!   fire at the same instant, approach O(1) per event.
//!
//! The batch is also the unit [`ParallelSimulation`](crate::ParallelSimulation)
//! hands to the world, which is what makes same-timestamp parallel tick
//! execution possible at all.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Which lane an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Rank/control/fabric traffic: anything not owned by a single server.
    Global,
    /// Traffic owned by one storage-server resource (disk, CPU, …).
    Server(usize),
}

/// Maps an event to its lane, the sharding analogue of
/// [`Routed`](crate::Routed). Events that touch shared state must map to
/// [`Lane::Global`]; only events whose handlers touch a single server's
/// resources may claim a server lane.
pub trait Laned {
    fn lane(&self) -> Lane;
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    // Reversed so the spill max-heap yields the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// One lane: an O(1) FIFO for in-order pushes plus a spill heap for the
/// out-of-order remainder. Seq numbers are globally increasing, so entries
/// appended while `time >= back.time` are already (time, seq)-sorted.
struct LaneBuf<E> {
    fifo: VecDeque<Entry<E>>,
    spill: BinaryHeap<Entry<E>>,
}

impl<E> Default for LaneBuf<E> {
    fn default() -> Self {
        LaneBuf {
            fifo: VecDeque::new(),
            spill: BinaryHeap::new(),
        }
    }
}

impl<E> LaneBuf<E> {
    /// Returns true when the entry missed the FIFO fast path.
    fn push(&mut self, entry: Entry<E>) -> bool {
        match self.fifo.back() {
            Some(back) if entry.time < back.time => {
                self.spill.push(entry);
                true
            }
            _ => {
                self.fifo.push_back(entry);
                false
            }
        }
    }

    /// Key of this lane's earliest entry.
    fn head_key(&self) -> Option<(SimTime, u64)> {
        match (self.fifo.front(), self.spill.peek()) {
            (Some(f), Some(s)) => Some(f.key().min(s.key())),
            (Some(f), None) => Some(f.key()),
            (None, Some(s)) => Some(s.key()),
            (None, None) => None,
        }
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        match (self.fifo.front(), self.spill.peek()) {
            (Some(f), Some(s)) if s.key() < f.key() => self.spill.pop(),
            (Some(_), _) => self.fifo.pop_front(),
            (None, _) => self.spill.pop(),
        }
    }

    /// Drop cancelled entries from this lane's head until both the FIFO
    /// front and the spill top are live, so `head_key` never reports a
    /// tombstone. Removed seqs are taken out of `dead`; the removal count
    /// is returned so the queue can fix its length.
    fn purge_dead(&mut self, dead: &mut HashSet<u64>) -> usize {
        let mut removed = 0;
        while !dead.is_empty() {
            if self.fifo.front().is_some_and(|e| dead.contains(&e.seq)) {
                let e = self.fifo.pop_front().expect("checked front");
                dead.remove(&e.seq);
                removed += 1;
            } else if self.spill.peek().is_some_and(|e| dead.contains(&e.seq)) {
                let e = self.spill.pop().expect("checked top");
                dead.remove(&e.seq);
                removed += 1;
            } else {
                break;
            }
        }
        removed
    }
}

/// A time-ordered event queue sharded into per-server lanes.
///
/// Drop-in order-equivalent to [`EventQueue`](crate::EventQueue): `push`,
/// `pop`, `peek_time` and the traffic counters behave identically. The
/// extra capability is [`pop_batch`](LaneQueue::pop_batch), which removes
/// *every* event of the earliest timestamp in one call.
pub struct LaneQueue<E> {
    lane_of: fn(&E) -> Lane,
    global: LaneBuf<E>,
    servers: Vec<LaneBuf<E>>,
    /// Cancelled-but-still-enqueued seqs (tombstones), purged lazily from
    /// lane heads. Contract: only pending seqs are ever cancelled, so every
    /// tombstone is still in some lane.
    dead: HashSet<u64>,
    seq: u64,
    popped: u64,
    cancelled: u64,
    spilled: u64,
    len: usize,
}

impl<E> LaneQueue<E> {
    /// Build a queue with an explicit lane-key function.
    pub fn new(lane_of: fn(&E) -> Lane) -> Self {
        LaneQueue {
            lane_of,
            global: LaneBuf::default(),
            servers: Vec::new(),
            dead: HashSet::new(),
            seq: 0,
            popped: 0,
            cancelled: 0,
            spilled: 0,
            len: 0,
        }
    }

    fn buf_mut(&mut self, lane: Lane) -> &mut LaneBuf<E> {
        match lane {
            Lane::Global => &mut self.global,
            Lane::Server(i) => {
                if i >= self.servers.len() {
                    self.servers.resize_with(i + 1, LaneBuf::default);
                }
                &mut self.servers[i]
            }
        }
    }

    /// Schedule `event` at absolute time `time`. Returns the entry's seq,
    /// usable with [`LaneQueue::cancel`] while the entry is pending.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let lane = (self.lane_of)(&event);
        if self.buf_mut(lane).push(Entry { time, seq, event }) {
            self.spilled += 1;
        }
        seq
    }

    /// Cancel the pending entry with the given seq: it will never be
    /// dispatched and does not count toward `dispatched_count`. The caller
    /// must guarantee the entry is still pending (not yet popped).
    pub fn cancel(&mut self, seq: u64) {
        self.dead.insert(seq);
        self.cancelled += 1;
    }

    /// Purge tombstones from every lane head so head keys are live.
    fn purge_dead(&mut self) {
        if self.dead.is_empty() {
            return;
        }
        let mut removed = self.global.purge_dead(&mut self.dead);
        for lane in self.servers.iter_mut() {
            if self.dead.is_empty() {
                break;
            }
            removed += lane.purge_dead(&mut self.dead);
        }
        self.len -= removed;
    }

    /// Index (global = `usize::MAX` sentinel not used; we scan directly) of
    /// the lane holding the minimum (time, seq) key, if any.
    fn min_lane(&mut self) -> Option<(Option<usize>, (SimTime, u64))> {
        self.purge_dead();
        let mut best: Option<(Option<usize>, (SimTime, u64))> =
            self.global.head_key().map(|k| (None, k));
        for (i, lane) in self.servers.iter().enumerate() {
            if let Some(k) = lane.head_key() {
                if best.as_ref().is_none_or(|(_, bk)| k < *bk) {
                    best = Some((Some(i), k));
                }
            }
        }
        best
    }

    /// Remove and return the earliest event (exact `EventQueue` pop order).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (lane, _) = self.min_lane()?;
        let buf = match lane {
            None => &mut self.global,
            Some(i) => &mut self.servers[i],
        };
        let e = buf.pop_min().expect("min lane is non-empty");
        self.popped += 1;
        self.len -= 1;
        Some((e.time, e.event))
    }

    /// Remove *all* events carrying the earliest timestamp, appending them
    /// to `out` in (time, seq) order, and return that timestamp.
    ///
    /// One head scan is amortised over the whole batch, so tick-dominated
    /// phases (every server lane firing at the same instant) cost O(1) per
    /// event instead of a heap sift.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let (_, (t, _)) = self.min_lane()?;
        let mut batch: Vec<(u64, E)> = Vec::new();
        let lanes = std::iter::once(&mut self.global).chain(self.servers.iter_mut());
        for lane in lanes {
            loop {
                // A tombstone may sit between same-timestamp live entries,
                // so re-purge after every pop, not just at the lane head.
                self.len -= lane.purge_dead(&mut self.dead);
                if lane.head_key().is_none_or(|(lt, _)| lt != t) {
                    break;
                }
                let e = lane.pop_min().expect("head checked non-empty");
                batch.push((e.seq, e.event));
            }
        }
        batch.sort_unstable_by_key(|(seq, _)| *seq);
        self.popped += batch.len() as u64;
        self.len -= batch.len();
        out.extend(batch.into_iter().map(|(_, e)| e));
        Some(t)
    }

    /// Timestamp of the earliest pending live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.min_lane().map(|(_, (t, _))| t)
    }

    pub fn len(&self) -> usize {
        // `len` counts physical entries; tombstones still buried in lanes
        // are in `dead` and must not show as pending.
        self.len - self.dead.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (including later-cancelled).
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever dispatched (cancelled entries excluded).
    pub fn dispatched_count(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever cancelled.
    pub fn cancelled_count(&self) -> u64 {
        self.cancelled
    }

    /// Number of pushes that missed the per-lane FIFO fast path and landed
    /// in a spill heap (an observability health signal: high spill rates
    /// mean out-of-order scheduling is defeating the O(1) path).
    pub fn spilled_count(&self) -> u64 {
        self.spilled
    }
}

impl<E: Laned> LaneQueue<E> {
    /// Build a queue keyed by the event type's own [`Laned`] impl.
    pub fn for_laned() -> Self {
        Self::new(<E as Laned>::lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// (payload, lane tag): 0 = global, k = server k-1.
    type Tagged = (usize, u8);

    fn tag_lane(e: &Tagged) -> Lane {
        match e.1 {
            0 => Lane::Global,
            k => Lane::Server((k - 1) as usize),
        }
    }

    #[test]
    fn pops_in_time_order_across_lanes() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(30), (0, 1));
        q.push(t(10), (1, 2));
        q.push(t(20), (2, 0));
        assert_eq!(q.pop(), Some((t(10), (1, 2))));
        assert_eq!(q.pop(), Some((t(20), (2, 0))));
        assert_eq!(q.pop(), Some((t(30), (0, 1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_push_order_across_lanes() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        for i in 0..100 {
            q.push(t(5), (i, (i % 7) as u8));
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), (i, (i % 7) as u8))));
        }
    }

    #[test]
    fn out_of_order_push_lands_in_spill_and_still_sorts() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(50), (0, 1));
        q.push(t(10), (1, 1)); // earlier than the lane's FIFO tail → spill
        q.push(t(60), (2, 1));
        q.push(t(55), (3, 1)); // spill again
        assert_eq!(q.pop(), Some((t(10), (1, 1))));
        assert_eq!(q.pop(), Some((t(50), (0, 1))));
        assert_eq!(q.pop(), Some((t(55), (3, 1))));
        assert_eq!(q.pop(), Some((t(60), (2, 1))));
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_seq_order() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(5), (0, 2));
        q.push(t(5), (1, 0));
        q.push(t(9), (2, 1));
        q.push(t(5), (3, 1));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(t(5)));
        assert_eq!(out, vec![(0, 2), (1, 0), (3, 1)]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(t(9)));
        assert_eq!(out, vec![(2, 1)]);
        assert!(q.is_empty());
        assert_eq!(q.pop_batch(&mut out), None);
    }

    #[test]
    fn cancelled_entries_never_pop() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        let a = q.push(t(1), (0, 1));
        let _b = q.push(t(1), (1, 0));
        let c = q.push(t(1), (2, 1)); // buried behind `a` in server lane 0
        let _d = q.push(t(2), (3, 1));
        q.cancel(a);
        q.cancel(c);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(1)));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(t(1)));
        assert_eq!(out, vec![(1, 0)]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(t(2)));
        assert_eq!(out, vec![(3, 1)]);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 4);
        assert_eq!(q.dispatched_count(), 2);
        assert_eq!(q.cancelled_count(), 2);
    }

    #[test]
    fn counters_track_traffic() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(1), (0, 0));
        q.push(t(1), (1, 1));
        q.push(t(2), (2, 1));
        let mut out = Vec::new();
        q.pop_batch(&mut out);
        assert_eq!(q.scheduled_count(), 3);
        assert_eq!(q.dispatched_count(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::EventQueue;
    use proptest::prelude::*;

    type Tagged = (usize, u8);

    fn tag_lane(e: &Tagged) -> Lane {
        match e.1 {
            0 => Lane::Global,
            k => Lane::Server((k - 1) as usize),
        }
    }

    /// One scripted step: push (time, lane), optionally followed by a pop
    /// (third component odd = pop).
    fn ops() -> impl Strategy<Value = Vec<(u64, u8, u8)>> {
        proptest::collection::vec((0u64..40, 0u8..6, 0u8..2), 0..250)
    }

    proptest! {
        /// The sharded queue's pop order equals the monolithic heap's for
        /// arbitrary interleaved push/pop sequences across lanes.
        #[test]
        fn lane_queue_matches_event_queue(script in ops()) {
            let mut lanes: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
            let mut heap: EventQueue<Tagged> = EventQueue::new();
            for (i, &(time, lane, pop)) in script.iter().enumerate() {
                let ev = (i, lane);
                lanes.push(SimTime::from_nanos(time), ev);
                heap.push(SimTime::from_nanos(time), ev);
                prop_assert_eq!(lanes.peek_time(), heap.peek_time());
                if pop == 1 {
                    prop_assert_eq!(lanes.pop(), heap.pop());
                }
                prop_assert_eq!(lanes.len(), heap.len());
            }
            loop {
                let (a, b) = (lanes.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(lanes.scheduled_count(), heap.scheduled_count());
            prop_assert_eq!(lanes.dispatched_count(), heap.dispatched_count());
        }

        /// Concatenated `pop_batch` output equals the single-heap pop
        /// sequence, and each batch holds exactly one timestamp.
        #[test]
        fn pop_batch_concatenation_matches_heap(script in ops()) {
            let mut lanes: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
            let mut heap: EventQueue<Tagged> = EventQueue::new();
            for (i, &(time, lane, _)) in script.iter().enumerate() {
                lanes.push(SimTime::from_nanos(time), (i, lane));
                heap.push(SimTime::from_nanos(time), (i, lane));
            }
            let mut out = Vec::new();
            while let Some(t) = lanes.pop_batch(&mut out) {
                prop_assert!(!out.is_empty());
                for ev in out.drain(..) {
                    prop_assert_eq!(heap.pop(), Some((t, ev)));
                }
            }
            prop_assert_eq!(heap.pop(), None);
        }
    }
}
