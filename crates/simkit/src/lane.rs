//! Sharded event queue with lookahead-window batching.
//!
//! [`LaneQueue`] splits the pending-event set into per-server lanes plus one
//! global lane (rank/control traffic), keyed by [`Laned`]. Every push is
//! stamped with the same global `(time, seq)` key the monolithic
//! [`EventQueue`](crate::EventQueue) uses, and pops always take the minimum
//! key across lanes — so the pop order is *identical* to the single heap
//! (proven by the proptest oracle below and by the golden-metrics suite).
//!
//! Since PR 8 the queue is organised around a **lookahead window**: a sorted
//! staging buffer refilled by harvesting, from every armed lane in one pass,
//! all events up to a conservative bound. The bound is the head of the
//! global lane — a cross-lane event is a barrier no server lane may be read
//! past blindly — stretched by an adaptive horizon that grows while handlers
//! keep scheduling *ahead* of the window and shrinks whenever one schedules
//! *into* it (an undercut). Correctness never depends on the bound: a small
//! min-heap over the lane heads tracks the exact earliest still-laned key,
//! and the window front is only dispatched while it does not exceed that
//! minimum; otherwise a *patch* refill merges everything up to the front's
//! timestamp first. The dispatch order is therefore exactly `(time, seq)`
//! for *any* horizon — the horizon is purely a performance knob.
//!
//! Why this is faster than one big heap:
//!
//! * Ticks for one server are scheduled in almost-nondecreasing time order,
//!   so each lane is a plain `VecDeque` with O(1) push at either end;
//!   mid-lane pushes are absorbed by a bounded back-scan insertion, and only
//!   entries displaced deeper than that land in a small per-lane spill heap.
//! * The head min-heap is over *lanes*, not events: its size is the number
//!   of armed lanes, and it only takes traffic when a lane's head actually
//!   changes — an in-order append costs O(1), no sift at all.
//! * One harvest is amortised over every event in the window — typically
//!   many timestamps — and a patch refill touches only the lanes that
//!   undercut the front plus the window's front run, never the whole window.
//! * [`LaneQueue::pop_batch`] drains a whole timestamp straight off the
//!   window front: no allocation, no sort (the window is already globally
//!   ordered).
//! * When the window is empty and a *single* lane owns the earliest
//!   timestamp — the chain regime, where each handler schedules the next
//!   event and windowing has nothing to amortise — the batch is drained
//!   directly off that lane's head run, bypassing the harvest/sort/window
//!   machinery altogether. The lane-head heap proves the run is globally
//!   minimal, so dispatch order is unaffected.
//!
//! The batch is also the unit [`ParallelSimulation`](crate::ParallelSimulation)
//! hands to the world, which is what makes same-timestamp parallel tick
//! execution possible at all.

use crate::time::{SimSpan, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Which lane an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Rank/control/fabric traffic: anything not owned by a single server.
    Global,
    /// Traffic owned by one storage-server resource (disk, CPU, …).
    Server(usize),
}

/// Maps an event to its lane, the sharding analogue of
/// [`Routed`](crate::Routed). Events that touch shared state must map to
/// [`Lane::Global`]; only events whose handlers touch a single server's
/// resources may claim a server lane.
pub trait Laned {
    fn lane(&self) -> Lane;
}

/// Lookahead-window telemetry, surfaced through
/// [`ExecProfile`](crate::ExecProfile) and the bench baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct LookaheadStats {
    /// Window refills: harvest passes over the armed lanes (fresh fills and
    /// patch merges combined).
    pub windows: u64,
    /// Live events brought into the window across all refills.
    pub window_events: u64,
    /// Patch refills forced because a handler scheduled an event *earlier*
    /// than work the window had already harvested (shrinks the horizon).
    pub undercuts: u64,
    /// Chain-mode fast-path batches: the window was empty and exactly one
    /// lane owned the earliest timestamp, so its head run was drained
    /// straight into the batch with no harvest, sort or window traffic.
    pub drains: u64,
    /// Events dispatched through the chain-mode fast path.
    pub drained_events: u64,
    /// Current adaptive lookahead horizon in nanoseconds.
    pub horizon_ns: u64,
}

/// How far back [`LaneBuf::push`] scans for an in-place insertion slot
/// before giving up and spilling to the per-lane heap. Pushes earlier than
/// the whole resident run take an O(1) front insertion instead.
const INSERT_SCAN: usize = 64;

/// Adaptive horizon bounds (nanoseconds): floor after the first growth step
/// and hard cap. Growth doubles on every fresh refill, undercuts divide by 4.
const HORIZON_MIN: u64 = 1_000;
const HORIZON_CAP: u64 = 1_000_000_000;

/// Largest previous-batch size at which `pop_batch` still probes the
/// chain-mode direct drain. Driver batches run a handful of events even
/// when lanes interleave, so the probe must survive those; genuine flood
/// batches (every lane tied on one timestamp) blow well past this and
/// switch the queue to pure windowed harvesting.
const CHAIN_PROBE_MAX: usize = 8;

/// Multiply-shift hasher for the tombstone set: seqs are dense counters, so
/// a Fibonacci hash mixes them plenty and skips SipHash on a hot path.
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("seq tombstones hash through write_u64")
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    // Reversed so the spill max-heap yields the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// One lane: a key-sorted `VecDeque` absorbing in-order appends and
/// earliest-yet pushes in O(1), near-order pushes via a bounded back-scan
/// insertion, plus a spill heap for entries displaced deeper than
/// [`INSERT_SCAN`]. Seq numbers are globally increasing, so an append with
/// `time >= back.time` is already (time, seq)-sorted.
struct LaneBuf<E> {
    fifo: VecDeque<Entry<E>>,
    spill: BinaryHeap<Entry<E>>,
    /// The head key this lane currently advertises in [`LaneQueue::heads`].
    /// Invariant: equals `head_key()` exactly — `Some` iff non-empty.
    armed: Option<(SimTime, u64)>,
}

impl<E> Default for LaneBuf<E> {
    fn default() -> Self {
        LaneBuf {
            fifo: VecDeque::new(),
            spill: BinaryHeap::new(),
            armed: None,
        }
    }
}

impl<E> LaneBuf<E> {
    /// Returns true when the entry missed the append, front-insert and
    /// bounded sorted-insert fast paths, landing in the spill heap.
    fn push(&mut self, entry: Entry<E>) -> bool {
        match self.fifo.back() {
            Some(back) if entry.time < back.time => {
                if self.fifo.front().is_some_and(|f| entry.time < f.time) {
                    // Earlier than the whole resident run (the common shape
                    // once the window has harvested the near-term prefix).
                    self.fifo.push_front(entry);
                    return false;
                }
                // Walk back at most INSERT_SCAN slots looking for the
                // insertion point. The new entry's seq is larger than every
                // resident seq, so `time <= entry.time` at a predecessor
                // means its whole key is smaller.
                let mut i = self.fifo.len();
                let mut steps = 0;
                while i > 0 && self.fifo[i - 1].time > entry.time {
                    if steps == INSERT_SCAN {
                        self.spill.push(entry);
                        return true;
                    }
                    i -= 1;
                    steps += 1;
                }
                self.fifo.insert(i, entry);
                false
            }
            _ => {
                self.fifo.push_back(entry);
                false
            }
        }
    }

    /// Key of this lane's earliest entry.
    fn head_key(&self) -> Option<(SimTime, u64)> {
        match (self.fifo.front(), self.spill.peek()) {
            (Some(f), Some(s)) => Some(f.key().min(s.key())),
            (Some(f), None) => Some(f.key()),
            (None, Some(s)) => Some(s.key()),
            (None, None) => None,
        }
    }

    /// Move every entry with `time <= bound` into `out` (unordered across
    /// lanes; the caller sorts the combined harvest once).
    fn harvest_into(&mut self, bound: SimTime, out: &mut Vec<Entry<E>>) {
        while self.fifo.front().is_some_and(|e| e.time <= bound) {
            out.push(self.fifo.pop_front().expect("checked front"));
        }
        while self.spill.peek().is_some_and(|e| e.time <= bound) {
            out.push(self.spill.pop().expect("checked top"));
        }
    }

    /// Pop every entry with `time == t` into `out` in (time, seq) order,
    /// merging the fifo front run with same-time spill entries. Returns the
    /// number drained. The chain-mode fast path: no allocation, no sort.
    fn drain_run(&mut self, t: SimTime, out: &mut Vec<E>) -> usize {
        let mut n = 0;
        loop {
            let f = self.fifo.front().filter(|e| e.time == t).map(Entry::key);
            let s = self.spill.peek().filter(|e| e.time == t).map(Entry::key);
            let e = match (f, s) {
                (Some(fk), Some(sk)) if sk < fk => self.spill.pop().expect("peeked"),
                (Some(_), _) => self.fifo.pop_front().expect("peeked"),
                (None, Some(_)) => self.spill.pop().expect("peeked"),
                (None, None) => break,
            };
            out.push(e.event);
            n += 1;
        }
        n
    }
}

/// A time-ordered event queue sharded into per-server lanes, batched through
/// a lookahead window.
///
/// Drop-in order-equivalent to [`EventQueue`](crate::EventQueue): `push`,
/// `pop`, `peek_time` and the traffic counters behave identically. The
/// extra capability is [`pop_batch`](LaneQueue::pop_batch), which removes
/// *every* event of the earliest timestamp in one call.
pub struct LaneQueue<E> {
    lane_of: fn(&E) -> Lane,
    global: LaneBuf<E>,
    servers: Vec<LaneBuf<E>>,
    /// Lazy min-heap over lane heads: `(head key, lane index)` with index 0
    /// the global lane and `i + 1` server lane `i`. An entry is current iff
    /// it equals its lane's `armed` key; anything else is a stale leftover
    /// from a head that has since moved, dropped on sight. Only pushes that
    /// *lower* a lane's head and post-harvest re-arms feed it, so in-order
    /// appends never touch it.
    heads: BinaryHeap<Reverse<((SimTime, u64), u32)>>,
    /// Arming events not yet folded into `heads`: pushes that lowered a
    /// lane's head append here in O(1), and [`LaneQueue::fold_arms`] merges
    /// them right before the heap is actually consulted. In flood regimes
    /// (every lane re-armed every timestamp, then fully harvested) the heap
    /// is never ordered at all — arms go vec → unordered drain, no sifts.
    pending_arms: Vec<((SimTime, u64), u32)>,
    /// The lookahead window: entries harvested from the lanes, globally
    /// (time, seq)-sorted, logically still pending. Always dispatched from
    /// the front.
    window: VecDeque<Entry<E>>,
    /// Scratch for the per-refill lane harvest, reused across refills.
    harvest: Vec<Entry<E>>,
    /// Adaptive lookahead horizon (ns) added past the global-lane head when
    /// bounding a fresh harvest. Performance-only: any value yields
    /// identical dispatch order.
    horizon: u64,
    /// Cancelled-but-still-enqueued seqs (tombstones), dropped lazily when
    /// they surface at the window front or flow through a refill. Contract:
    /// only pending seqs are ever cancelled, so every tombstone is still in
    /// some lane or in the window.
    dead: SeqSet,
    seq: u64,
    popped: u64,
    cancelled: u64,
    spilled: u64,
    /// Physical entries held (lanes + window), tombstones included.
    len: usize,
    /// Size of the last `pop_batch` result: the chain fast path is only
    /// probed while batches stay small (flood batches make the probe a
    /// guaranteed-miss fold of every armed lane). Purely adaptive — the
    /// value depends only on the event stream, so replay is deterministic.
    last_batch: usize,
    windows: u64,
    window_events: u64,
    undercuts: u64,
    drains: u64,
    drained_events: u64,
}

impl<E> LaneQueue<E> {
    /// Build a queue with an explicit lane-key function.
    pub fn new(lane_of: fn(&E) -> Lane) -> Self {
        LaneQueue {
            lane_of,
            global: LaneBuf::default(),
            servers: Vec::new(),
            heads: BinaryHeap::new(),
            pending_arms: Vec::new(),
            window: VecDeque::new(),
            harvest: Vec::new(),
            horizon: 0,
            dead: SeqSet::default(),
            seq: 0,
            popped: 0,
            cancelled: 0,
            spilled: 0,
            len: 0,
            last_batch: 0,
            windows: 0,
            window_events: 0,
            undercuts: 0,
            drains: 0,
            drained_events: 0,
        }
    }

    /// Schedule `event` at absolute time `time`. Returns the entry's seq,
    /// usable with [`LaneQueue::cancel`] while the entry is pending.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let key = (time, seq);
        let (buf, idx) = match (self.lane_of)(&event) {
            Lane::Global => (&mut self.global, 0u32),
            Lane::Server(i) => {
                if i >= self.servers.len() {
                    self.servers.resize_with(i + 1, LaneBuf::default);
                }
                (&mut self.servers[i], (i + 1) as u32)
            }
        };
        // Seqs only grow, so the head can only drop when the new *time* is
        // strictly earlier; an equal-time push never changes the head.
        let lowered = buf.armed.is_none_or(|h| key < h);
        if buf.push(Entry { time, seq, event }) {
            self.spilled += 1;
        }
        if lowered {
            buf.armed = Some(key);
            self.pending_arms.push((key, idx));
        }
        seq
    }

    /// Merge deferred arming events into the head heap. Called right before
    /// any ordered read of `heads`; until then arms are plain O(1) appends.
    #[inline]
    fn fold_arms(&mut self) {
        if !self.pending_arms.is_empty() {
            self.heads.extend(self.pending_arms.drain(..).map(Reverse));
        }
    }

    /// Cancel the pending entry with the given seq: it will never be
    /// dispatched and does not count toward `dispatched_count`. The caller
    /// must guarantee the entry is still pending (not yet popped) — it may
    /// already sit inside the lookahead window, which is still pending.
    pub fn cancel(&mut self, seq: u64) {
        self.dead.insert(seq);
        self.cancelled += 1;
    }

    /// Exact minimum key still sitting in a lane (not yet windowed),
    /// dropping stale head-heap leftovers on the way.
    fn lane_min(&mut self) -> Option<(SimTime, u64)> {
        self.fold_arms();
        while let Some(&Reverse((key, idx))) = self.heads.peek() {
            let armed = if idx == 0 {
                self.global.armed
            } else {
                self.servers[(idx - 1) as usize].armed
            };
            if armed == Some(key) {
                return Some(key);
            }
            self.heads.pop();
        }
        None
    }

    /// Drain every armed lane with head `<= bound` into `harvest` and
    /// re-arm the survivors. Only lanes that actually hold work below the
    /// bound are touched — idle lanes cost nothing.
    fn harvest_up_to(&mut self, bound: SimTime) {
        if bound == SimTime::MAX {
            // Everything armed goes: no ordering needed, so drain the heap
            // and the deferred arms without a single sift. In pure flood
            // regimes (no global barrier pending) the heap never orders.
            self.pending_arms
                .extend(self.heads.drain().map(|Reverse(e)| e));
            let mut i = 0;
            while i < self.pending_arms.len() {
                let (key, idx) = self.pending_arms[i];
                i += 1;
                let buf = if idx == 0 {
                    &mut self.global
                } else {
                    &mut self.servers[(idx - 1) as usize]
                };
                if buf.armed != Some(key) {
                    continue; // stale leftover or duplicate arm
                }
                buf.harvest_into(bound, &mut self.harvest);
                buf.armed = None;
            }
            self.pending_arms.clear();
            return;
        }
        self.fold_arms();
        while let Some(&Reverse((key, idx))) = self.heads.peek() {
            // Stale entries are never *earlier* than their lane's armed key
            // …except when a later push lowered the head, which also pushed
            // the new lower key — so a top above the bound proves every
            // armed lane is above it too.
            if key.0 > bound {
                break;
            }
            self.heads.pop();
            let buf = if idx == 0 {
                &mut self.global
            } else {
                &mut self.servers[(idx - 1) as usize]
            };
            if buf.armed != Some(key) {
                continue; // stale leftover
            }
            buf.harvest_into(bound, &mut self.harvest);
            buf.armed = buf.head_key();
            if let Some(h) = buf.armed {
                self.heads.push(Reverse((h, idx)));
            }
        }
    }

    /// Drop tombstoned entries from the harvest (they are consumed here:
    /// removed from the dead set and from the physical length).
    fn filter_harvest(&mut self) {
        if self.dead.is_empty() {
            return;
        }
        let dead = &mut self.dead;
        let before = self.harvest.len();
        self.harvest.retain(|e| !dead.remove(&e.seq));
        self.len -= before - self.harvest.len();
    }

    /// Fill an empty window: harvest every lane up to the global-lane head
    /// (the next cross-lane barrier) stretched by the adaptive horizon, or
    /// everything when the global lane is idle.
    fn refill_fresh(&mut self) {
        debug_assert!(self.window.is_empty());
        let bound = match self.global.armed {
            Some((g, _)) => g + SimSpan::from_nanos(self.horizon),
            None => SimTime::MAX,
        };
        self.harvest.clear();
        self.harvest_up_to(bound);
        self.filter_harvest();
        self.harvest.sort_unstable_by_key(Entry::key);
        self.windows += 1;
        self.window_events += self.harvest.len() as u64;
        self.window.extend(self.harvest.drain(..));
        self.horizon = self
            .horizon
            .saturating_mul(2)
            .clamp(HORIZON_MIN, HORIZON_CAP);
    }

    /// Merge everything the lanes hold up to `bound` (the window front's
    /// timestamp) into the window front. Entries past the front's timestamp
    /// are untouched: the merge set all sorts before them, so only the
    /// window's same-time front run needs to take part.
    fn refill_patch(&mut self, bound: SimTime) {
        self.harvest.clear();
        self.harvest_up_to(bound);
        self.filter_harvest();
        let live = self.harvest.len() as u64;
        while self.window.front().is_some_and(|e| e.time <= bound) {
            self.harvest
                .push(self.window.pop_front().expect("checked front"));
        }
        self.harvest.sort_unstable_by_key(Entry::key);
        for e in self.harvest.drain(..).rev() {
            self.window.push_front(e);
        }
        self.windows += 1;
        self.window_events += live;
    }

    /// Make the window front the globally minimal *live* key, refilling and
    /// dropping tombstones as needed. Returns false iff the queue is empty.
    fn ensure_front(&mut self) -> bool {
        loop {
            let Some(fkey) = self.window.front().map(Entry::key) else {
                // Window empty: `len` now counts exactly the lanes'
                // physical entries, and every non-empty lane is armed, so a
                // fresh refill always makes progress.
                if self.len == 0 {
                    return false;
                }
                self.refill_fresh();
                continue;
            };
            // The front is safe to dispatch only if no laned entry
            // undercuts it; a patch merge pulls the undercutters in.
            if self.lane_min().is_some_and(|m| m < fkey) {
                self.undercuts += 1;
                self.horizon /= 4;
                self.refill_patch(fkey.0);
                continue;
            }
            if !self.dead.is_empty() && self.dead.remove(&fkey.1) {
                self.window.pop_front();
                self.len -= 1;
                continue;
            }
            return true;
        }
    }

    /// Remove and return the earliest event (exact `EventQueue` pop order).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.ensure_front() {
            return None;
        }
        let e = self.window.pop_front().expect("ensure_front checked");
        self.popped += 1;
        self.len -= 1;
        Some((e.time, e.event))
    }

    /// Chain-mode fast path: with the window empty and no tombstones, if
    /// exactly one lane owns the earliest timestamp then that lane's head
    /// run *is* the complete next batch — drain it straight into `out`,
    /// skipping harvest, sort and window traffic entirely. This is the
    /// regime where events arrive one handler-step at a time (tick chains
    /// with far-future residue elsewhere), where windowing has nothing to
    /// amortise.
    fn try_drain(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        self.lane_min()?; // validate the top, shedding stale leftovers
        let Reverse((key, idx)) = self.heads.pop().expect("lane_min validated the top");
        // Runner-up head: skip stale leftovers and stale twins of the
        // popped top (that lane's armed key is already accounted for).
        let second = loop {
            match self.heads.peek() {
                None => break None,
                Some(&Reverse((k2, i2))) => {
                    let armed = if i2 == 0 {
                        self.global.armed
                    } else {
                        self.servers[(i2 - 1) as usize].armed
                    };
                    if i2 != idx && armed == Some(k2) {
                        break Some(k2);
                    }
                    self.heads.pop();
                }
            }
        };
        if second.is_some_and(|s| s.0 == key.0) {
            // Another lane ties the earliest timestamp: the batch needs the
            // cross-lane merge, so hand back to the window path.
            self.heads.push(Reverse((key, idx)));
            return None;
        }
        let buf = if idx == 0 {
            &mut self.global
        } else {
            &mut self.servers[(idx - 1) as usize]
        };
        let n = buf.drain_run(key.0, out);
        buf.armed = buf.head_key();
        if let Some(h) = buf.armed {
            self.heads.push(Reverse((h, idx)));
        }
        self.popped += n as u64;
        self.len -= n;
        self.drains += 1;
        self.drained_events += n as u64;
        Some(key.0)
    }

    /// Remove *all* events carrying the earliest timestamp, appending them
    /// to `out` in (time, seq) order, and return that timestamp.
    ///
    /// Straight drain off the window front — no allocation, no sort. One
    /// lane harvest is amortised over every timestamp in the window.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let start = out.len();
        let t = self.pop_batch_inner(out)?;
        self.last_batch = out.len() - start;
        Some(t)
    }

    fn pop_batch_inner(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        // Probe the chain fast path only while batches run small: a flood
        // batch (many lanes tied on one timestamp) makes the probe a
        // guaranteed miss that pointlessly orders every armed lane.
        if self.last_batch <= CHAIN_PROBE_MAX && self.window.is_empty() && self.dead.is_empty() {
            if let Some(t) = self.try_drain(out) {
                return Some(t);
            }
        }
        if !self.ensure_front() {
            return None;
        }
        let t = self.window.front().expect("ensure_front checked").time;
        // Same-timestamp events may still sit in the lanes (e.g.
        // `immediately` follow-ups, seq above the front's); pull them in so
        // the batch is complete. Later-time entries can stay put.
        if self.lane_min().is_some_and(|(mt, _)| mt == t) {
            self.refill_patch(t);
        }
        while let Some(front) = self.window.front() {
            if front.time != t {
                break;
            }
            let e = self.window.pop_front().expect("front checked");
            self.len -= 1;
            if !self.dead.is_empty() && self.dead.remove(&e.seq) {
                continue;
            }
            self.popped += 1;
            out.push(e.event);
        }
        Some(t)
    }

    /// Timestamp of the earliest pending live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.ensure_front() {
            return None;
        }
        Some(self.window.front().expect("ensure_front checked").time)
    }

    pub fn len(&self) -> usize {
        // `len` counts physical entries; tombstones still buried in lanes
        // or the window are in `dead` and must not show as pending.
        self.len - self.dead.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (including later-cancelled).
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever dispatched (cancelled entries excluded).
    pub fn dispatched_count(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever cancelled.
    pub fn cancelled_count(&self) -> u64 {
        self.cancelled
    }

    /// Number of pushes that missed the per-lane append, front-insert and
    /// bounded sorted-insert fast paths, landing in a spill heap (an
    /// observability health signal: high spill rates mean deeply
    /// out-of-order scheduling is defeating the O(1) paths).
    pub fn spilled_count(&self) -> u64 {
        self.spilled
    }

    /// Lookahead-window counters (refills, events windowed, undercuts,
    /// current horizon).
    pub fn lookahead_stats(&self) -> LookaheadStats {
        LookaheadStats {
            windows: self.windows,
            window_events: self.window_events,
            undercuts: self.undercuts,
            drains: self.drains,
            drained_events: self.drained_events,
            horizon_ns: self.horizon,
        }
    }

    /// Seed the adaptive lookahead horizon (nanoseconds). Purely a
    /// performance hint — the dispatch order is bit-identical for any value
    /// (see the proptest oracle); adaptivity keeps adjusting from here.
    pub fn set_lookahead_horizon(&mut self, ns: u64) {
        self.horizon = ns.min(HORIZON_CAP);
    }
}

impl<E: Laned> LaneQueue<E> {
    /// Build a queue keyed by the event type's own [`Laned`] impl.
    pub fn for_laned() -> Self {
        Self::new(<E as Laned>::lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// (payload, lane tag): 0 = global, k = server k-1.
    type Tagged = (usize, u8);

    fn tag_lane(e: &Tagged) -> Lane {
        match e.1 {
            0 => Lane::Global,
            k => Lane::Server((k - 1) as usize),
        }
    }

    #[test]
    fn pops_in_time_order_across_lanes() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(30), (0, 1));
        q.push(t(10), (1, 2));
        q.push(t(20), (2, 0));
        assert_eq!(q.pop(), Some((t(10), (1, 2))));
        assert_eq!(q.pop(), Some((t(20), (2, 0))));
        assert_eq!(q.pop(), Some((t(30), (0, 1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_push_order_across_lanes() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        for i in 0..100 {
            q.push(t(5), (i, (i % 7) as u8));
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), (i, (i % 7) as u8))));
        }
    }

    #[test]
    fn out_of_order_push_sorted_inserts_without_spilling() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(50), (0, 1));
        q.push(t(10), (1, 1)); // earlier than the whole lane → front insert
        q.push(t(60), (2, 1));
        q.push(t(55), (3, 1)); // mid-lane → back-scan insert
        assert_eq!(q.spilled_count(), 0);
        assert_eq!(q.pop(), Some((t(10), (1, 1))));
        assert_eq!(q.pop(), Some((t(50), (0, 1))));
        assert_eq!(q.pop(), Some((t(55), (3, 1))));
        assert_eq!(q.pop(), Some((t(60), (2, 1))));
    }

    #[test]
    fn earliest_yet_push_front_inserts_without_spilling() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        for i in 0..(INSERT_SCAN + 10) {
            q.push(t(100 + i as u64), (i, 1));
        }
        // Earlier than the whole resident run: O(1) front insert, no spill
        // even though the displacement exceeds the back-scan budget.
        q.push(t(1), (999, 1));
        assert_eq!(q.spilled_count(), 0);
        assert_eq!(q.pop(), Some((t(1), (999, 1))));
        assert_eq!(q.pop(), Some((t(100), (0, 1))));
    }

    #[test]
    fn deeply_displaced_push_spills_and_still_sorts() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        for i in 0..200 {
            q.push(t(100 + i as u64), (i, 1));
        }
        // Mid-lane (not earliest) and displaced past the back-scan budget:
        // misses every fast path and spills.
        q.push(t(105), (999, 1));
        assert_eq!(q.spilled_count(), 1);
        assert_eq!(q.pop(), Some((t(100), (0, 1))));
        for i in 1..=5 {
            assert_eq!(q.pop(), Some((t(100 + i as u64), (i, 1))));
        }
        assert_eq!(q.pop(), Some((t(105), (999, 1))));
        assert_eq!(q.pop(), Some((t(106), (6, 1))));
    }

    #[test]
    fn cross_lane_event_truncates_window() {
        let s = SimTime::from_secs_f64;
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(s(1.0), (0, 1));
        q.push(s(2.0), (1, 0)); // global barrier
        q.push(s(3.0), (2, 1)); // same server lane, past the barrier
        assert_eq!(q.peek_time(), Some(s(1.0)));
        // The refill harvested up to the global barrier plus a horizon far
        // smaller than the 1 s gap; the 3.0 s server event stays laned.
        assert_eq!(q.window.len(), 2);
        assert_eq!(q.pop(), Some((s(1.0), (0, 1))));
        assert_eq!(q.pop(), Some((s(2.0), (1, 0))));
        // Barrier consumed: the next refill may take everything.
        assert_eq!(q.pop(), Some((s(3.0), (2, 1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_global_lane_windows_everything() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(10), (0, 1));
        q.push(t(20), (1, 2));
        q.push(t(30), (2, 1));
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.window.len(), 3);
        let stats = q.lookahead_stats();
        assert_eq!(stats.windows, 1);
        assert_eq!(stats.window_events, 3);
    }

    #[test]
    fn undercutting_push_is_merged_before_dispatch() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(10), (0, 1));
        q.push(t(30), (1, 2));
        assert_eq!(q.peek_time(), Some(t(10))); // window = [10, 30]
        assert_eq!(q.pop(), Some((t(10), (0, 1))));
        q.push(t(20), (2, 1)); // undercuts the harvested 30
        assert_eq!(q.pop(), Some((t(20), (2, 1))));
        assert_eq!(q.pop(), Some((t(30), (1, 2))));
        assert!(q.lookahead_stats().undercuts >= 1);
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_seq_order() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(5), (0, 2));
        q.push(t(5), (1, 0));
        q.push(t(9), (2, 1));
        q.push(t(5), (3, 1));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(t(5)));
        assert_eq!(out, vec![(0, 2), (1, 0), (3, 1)]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(t(9)));
        assert_eq!(out, vec![(2, 1)]);
        assert!(q.is_empty());
        assert_eq!(q.pop_batch(&mut out), None);
    }

    #[test]
    fn same_timestamp_push_after_refill_joins_the_batch() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(5), (0, 1));
        q.push(t(9), (1, 2));
        assert_eq!(q.peek_time(), Some(t(5))); // windowed both
        q.push(t(5), (2, 2)); // same-timestamp straggler, still laned
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(t(5)));
        assert_eq!(out, vec![(0, 1), (2, 2)]);
    }

    #[test]
    fn cancelled_entries_never_pop() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        let a = q.push(t(1), (0, 1));
        let _b = q.push(t(1), (1, 0));
        let c = q.push(t(1), (2, 1)); // buried behind `a` in server lane 0
        let _d = q.push(t(2), (3, 1));
        q.cancel(a);
        q.cancel(c);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(1)));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(t(1)));
        assert_eq!(out, vec![(1, 0)]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(t(2)));
        assert_eq!(out, vec![(3, 1)]);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 4);
        assert_eq!(q.dispatched_count(), 2);
        assert_eq!(q.cancelled_count(), 2);
    }

    #[test]
    fn cancel_inside_the_window_is_honoured() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        let _a = q.push(t(1), (0, 1));
        let b = q.push(t(2), (1, 2));
        let _c = q.push(t(3), (2, 1));
        assert_eq!(q.peek_time(), Some(t(1))); // all three windowed
        assert_eq!(q.window.len(), 3);
        q.cancel(b); // cancel an already-harvested entry
        assert_eq!(q.pop(), Some((t(1), (0, 1))));
        assert_eq!(q.pop(), Some((t(3), (2, 1))));
        assert_eq!(q.pop(), None);
        assert_eq!(q.dispatched_count(), 2);
    }

    #[test]
    fn counters_track_traffic() {
        let mut q: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
        q.push(t(1), (0, 0));
        q.push(t(1), (1, 1));
        q.push(t(2), (2, 1));
        let mut out = Vec::new();
        q.pop_batch(&mut out);
        assert_eq!(q.scheduled_count(), 3);
        assert_eq!(q.dispatched_count(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::EventQueue;
    use proptest::prelude::*;

    type Tagged = (usize, u8);

    fn tag_lane(e: &Tagged) -> Lane {
        match e.1 {
            0 => Lane::Global,
            k => Lane::Server((k - 1) as usize),
        }
    }

    /// One scripted step: push (time, lane), optionally followed by a pop
    /// (third component odd = pop).
    fn ops() -> impl Strategy<Value = Vec<(u64, u8, u8)>> {
        proptest::collection::vec((0u64..40, 0u8..6, 0u8..2), 0..250)
    }

    /// Lookahead horizons spanning "window = single barrier bound" through
    /// "window swallows the whole 40 ns script range".
    fn horizons() -> impl Strategy<Value = u64> {
        (0u64..4).prop_map(|k| [0, 7, 40, 1_000_000][k as usize])
    }

    proptest! {
        /// The windowed queue's pop order equals the monolithic heap's for
        /// arbitrary interleaved push/pop sequences across lanes, at any
        /// lookahead horizon (pushes mid-drain exercise the undercut path).
        #[test]
        fn lane_queue_matches_event_queue(script in ops(), horizon in horizons()) {
            let mut lanes: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
            lanes.set_lookahead_horizon(horizon);
            let mut heap: EventQueue<Tagged> = EventQueue::new();
            for (i, &(time, lane, pop)) in script.iter().enumerate() {
                let ev = (i, lane);
                lanes.push(SimTime::from_nanos(time), ev);
                heap.push(SimTime::from_nanos(time), ev);
                prop_assert_eq!(lanes.peek_time(), heap.peek_time());
                if pop == 1 {
                    prop_assert_eq!(lanes.pop(), heap.pop());
                }
                prop_assert_eq!(lanes.len(), heap.len());
            }
            loop {
                let (a, b) = (lanes.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(lanes.scheduled_count(), heap.scheduled_count());
            prop_assert_eq!(lanes.dispatched_count(), heap.dispatched_count());
        }

        /// Concatenated `pop_batch` output equals the single-heap pop
        /// sequence, and each batch holds exactly one timestamp.
        #[test]
        fn pop_batch_concatenation_matches_heap(script in ops(), horizon in horizons()) {
            let mut lanes: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
            lanes.set_lookahead_horizon(horizon);
            let mut heap: EventQueue<Tagged> = EventQueue::new();
            for (i, &(time, lane, _)) in script.iter().enumerate() {
                lanes.push(SimTime::from_nanos(time), (i, lane));
                heap.push(SimTime::from_nanos(time), (i, lane));
            }
            let mut out = Vec::new();
            while let Some(t) = lanes.pop_batch(&mut out) {
                prop_assert!(!out.is_empty());
                for ev in out.drain(..) {
                    prop_assert_eq!(heap.pop(), Some((t, ev)));
                }
            }
            prop_assert_eq!(heap.pop(), None);
        }

        /// Cancellations — including of entries already harvested into the
        /// window — never change the surviving pop order vs the heap.
        #[test]
        fn cancels_match_heap_with_window(script in ops(), horizon in horizons()) {
            let mut lanes: LaneQueue<Tagged> = LaneQueue::new(tag_lane);
            lanes.set_lookahead_horizon(horizon);
            let mut heap: EventQueue<Tagged> = EventQueue::new();
            // Seqs still pending in both queues (identical by construction).
            let mut pending: Vec<u64> = Vec::new();
            for (i, &(time, lane, op)) in script.iter().enumerate() {
                let ev = (i, lane);
                let sa = lanes.push(SimTime::from_nanos(time), ev);
                let sb = heap.push(SimTime::from_nanos(time), ev);
                prop_assert_eq!(sa, sb);
                pending.push(sa);
                // Peek first so the lanes harvest a window — cancels after
                // this exercise the in-window tombstone path.
                prop_assert_eq!(lanes.peek_time(), heap.peek_time());
                if op == 1 && !pending.is_empty() {
                    let victim = pending.remove((time as usize) % pending.len());
                    lanes.cancel(victim);
                    heap.cancel(victim);
                }
                prop_assert_eq!(lanes.len(), heap.len());
            }
            loop {
                let (a, b) = (lanes.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(lanes.dispatched_count(), heap.dispatched_count());
            prop_assert_eq!(lanes.cancelled_count(), heap.cancelled_count());
        }
    }
}
