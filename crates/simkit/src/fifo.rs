//! Multi-server FIFO queueing resource.
//!
//! Models resources that serve requests one-at-a-time per server with an
//! explicit service time — e.g. a disk head (1 server) or a fixed-size
//! thread pool. The caller supplies the service time at submission; the
//! resource tracks queueing, start and completion.
//!
//! Like [`crate::share::ShareResource`], the caller drives time: it schedules
//! a tick for [`next_event`](FifoServer::next_event) carrying
//! [`epoch`](FifoServer::epoch) and calls
//! [`take_completed`](FifoServer::take_completed) when the tick fires.

use crate::time::{SimSpan, SimTime};
use std::collections::VecDeque;

/// Identifies a request within one `FifoServer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

#[derive(Debug, Clone)]
struct InService {
    id: ReqId,
    finish: SimTime,
}

#[derive(Debug, Clone)]
struct Waiting {
    id: ReqId,
    service: SimSpan,
    enqueued: SimTime,
}

/// Completed request record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub id: ReqId,
    /// Time spent waiting before service began.
    pub queue_delay: SimSpan,
    pub finished_at: SimTime,
}

/// FIFO queue in front of `servers` identical servers.
#[derive(Debug, Clone)]
pub struct FifoServer {
    servers: usize,
    busy: Vec<InService>,
    queue: VecDeque<Waiting>,
    start_times: Vec<(ReqId, SimTime, SimTime)>, // (id, enqueued, started)
    next_id: u64,
    epoch: u64,
    served: u64,
}

impl FifoServer {
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        FifoServer {
            servers,
            busy: Vec::new(),
            queue: VecDeque::new(),
            start_times: Vec::new(),
            next_id: 0,
            epoch: 0,
            served: 0,
        }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Requests currently waiting (not yet in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently being served.
    pub fn in_service(&self) -> usize {
        self.busy.len()
    }

    /// Total requests ever served to completion.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Submit a request needing `service` time. Starts immediately if a
    /// server is free.
    pub fn submit(&mut self, now: SimTime, service: SimSpan) -> ReqId {
        let id = ReqId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(Waiting {
            id,
            service,
            enqueued: now,
        });
        self.fill_servers(now);
        self.epoch += 1;
        id
    }

    /// Earliest time at which a request in service completes.
    pub fn next_event(&self) -> Option<SimTime> {
        self.busy.iter().map(|s| s.finish).min()
    }

    /// Collect requests that have finished by `now`, starting queued work on
    /// the freed servers.
    pub fn take_completed(&mut self, now: SimTime) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.busy.len() {
            if self.busy[i].finish <= now {
                let s = self.busy.swap_remove(i);
                let (enq, started) = self
                    .start_times
                    .iter()
                    .find(|(id, _, _)| *id == s.id)
                    .map(|&(_, e, st)| (e, st))
                    .expect("started request has a start record");
                self.start_times.retain(|(id, _, _)| *id != s.id);
                out.push(Completion {
                    id: s.id,
                    queue_delay: started - enq,
                    finished_at: s.finish,
                });
                self.served += 1;
            } else {
                i += 1;
            }
        }
        if !out.is_empty() {
            self.fill_servers(now);
            self.epoch += 1;
            // Stable order: completions sorted by finish time then id.
            out.sort_by_key(|c| (c.finished_at, c.id));
        }
        out
    }

    fn fill_servers(&mut self, now: SimTime) {
        while self.busy.len() < self.servers {
            let Some(w) = self.queue.pop_front() else {
                break;
            };
            self.start_times.push((w.id, w.enqueued, now));
            self.busy.push(InService {
                id: w.id,
                finish: now + w.service,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimSpan {
        SimSpan::from_millis(v)
    }
    fn at_ms(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn single_server_serializes() {
        let mut f = FifoServer::new(1);
        let a = f.submit(SimTime::ZERO, ms(10));
        let b = f.submit(SimTime::ZERO, ms(10));
        assert_eq!(f.in_service(), 1);
        assert_eq!(f.queue_len(), 1);
        assert_eq!(f.next_event(), Some(at_ms(10)));

        let done = f.take_completed(at_ms(10));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, a);
        assert_eq!(done[0].queue_delay, SimSpan::ZERO);

        assert_eq!(f.next_event(), Some(at_ms(20)));
        let done = f.take_completed(at_ms(20));
        assert_eq!(done[0].id, b);
        assert_eq!(done[0].queue_delay, ms(10));
        assert_eq!(f.served(), 2);
    }

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut f = FifoServer::new(3);
        for _ in 0..3 {
            f.submit(SimTime::ZERO, ms(5));
        }
        assert_eq!(f.in_service(), 3);
        assert_eq!(f.queue_len(), 0);
        let done = f.take_completed(at_ms(5));
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn completions_sorted_by_finish_then_id() {
        let mut f = FifoServer::new(2);
        let a = f.submit(SimTime::ZERO, ms(10));
        let b = f.submit(SimTime::ZERO, ms(5));
        let done = f.take_completed(at_ms(10));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, b);
        assert_eq!(done[1].id, a);
    }

    #[test]
    fn freed_server_starts_queued_work() {
        let mut f = FifoServer::new(1);
        f.submit(SimTime::ZERO, ms(4));
        let b = f.submit(SimTime::ZERO, ms(6));
        f.take_completed(at_ms(4));
        // b started at 4 ms, finishes at 10 ms.
        assert_eq!(f.next_event(), Some(at_ms(10)));
        let done = f.take_completed(at_ms(10));
        assert_eq!(done[0].id, b);
        assert_eq!(done[0].queue_delay, ms(4));
    }

    #[test]
    fn idle_has_no_next_event() {
        let f = FifoServer::new(2);
        assert_eq!(f.next_event(), None);
    }

    #[test]
    fn epoch_changes_on_submit_and_completion() {
        let mut f = FifoServer::new(1);
        let e0 = f.epoch();
        f.submit(SimTime::ZERO, ms(1));
        assert_ne!(f.epoch(), e0);
        let e1 = f.epoch();
        f.take_completed(at_ms(1));
        assert_ne!(f.epoch(), e1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// With one server, total busy time equals the sum of service times and
    /// requests complete in submission order.
    #[test]
    fn single_server_work_conserving() {
        proptest!(|(services in proptest::collection::vec(1u64..100, 1..50))| {
            let mut f = FifoServer::new(1);
            let ids: Vec<ReqId> = services
                .iter()
                .map(|&s| f.submit(SimTime::ZERO, SimSpan::from_millis(s)))
                .collect();
            let mut completed = Vec::new();
            while let Some(t) = f.next_event() {
                completed.extend(f.take_completed(t));
            }
            prop_assert_eq!(completed.len(), ids.len());
            let got: Vec<ReqId> = completed.iter().map(|c| c.id).collect();
            prop_assert_eq!(got, ids);
            let total: u64 = services.iter().sum();
            prop_assert_eq!(
                completed.last().unwrap().finished_at,
                SimTime::ZERO + SimSpan::from_millis(total)
            );
        });
    }

    /// With k servers and identical service times, the makespan is
    /// ceil(n / k) × service.
    #[test]
    fn k_servers_batch_makespan() {
        proptest!(|(n in 1usize..40, k in 1usize..8, service in 1u64..50)| {
            let mut f = FifoServer::new(k);
            for _ in 0..n {
                f.submit(SimTime::ZERO, SimSpan::from_millis(service));
            }
            let mut last = SimTime::ZERO;
            while let Some(t) = f.next_event() {
                for c in f.take_completed(t) {
                    last = last.max(c.finished_at);
                }
            }
            let waves = n.div_ceil(k) as u64;
            prop_assert_eq!(last, SimTime::ZERO + SimSpan::from_millis(waves * service));
        });
    }
}
