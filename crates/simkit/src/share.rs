//! Generalized processor-sharing resource with max-min fair allocation.
//!
//! Models any resource whose concurrent users split a fixed capacity fairly,
//! with an optional per-task rate cap:
//!
//! * a multi-core CPU: `capacity = cores × core_rate`, per-task cap =
//!   `core_rate` (a sequential task cannot use more than one core);
//! * a network link shared by flows: `capacity = link_bandwidth`, per-flow cap
//!   = whatever the flow's other bottleneck allows.
//!
//! Rates are recomputed by water-filling whenever the task set or the
//! capacity changes — but *lazily*: mutators only mark the allocation dirty,
//! and the single water-filling pass runs when rates are next observed
//! ([`next_completion`](ShareResource::next_completion),
//! [`rate_of`](ShareResource::rate_of), …) or when simulated time moves
//! forward. N same-timestamp churn operations therefore cost one fill, and
//! because the fill is a pure function of the task set, the coalesced result
//! is bit-identical to eager per-operation recomputation.
//!
//! Completion queries are O(log n): every fill pushes projected completion
//! times into a min-heap of `(time, generation, id)` entries; stale entries
//! (task gone, or superseded by a newer fill) are lazily discarded on peek.
//!
//! The caller schedules a completion tick for
//! [`next_completion`](ShareResource::next_completion) carrying the current
//! [`epoch`](ShareResource::epoch); if the epoch moved on by the time the tick
//! fires, the tick is stale and must be ignored.

use crate::time::{SimSpan, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Identifies a task within one `ShareResource`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

#[derive(Debug, Clone)]
struct Task {
    remaining: f64,
    total: f64,
    cap: f64,
    rate: f64,
    /// Generation of this task's live heap entry; entries carrying an older
    /// generation are stale and dropped when encountered at the heap top.
    gen: u64,
}

/// A task removed before completion, with how much work it had left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemovedTask {
    /// Work units still to do.
    pub remaining: f64,
    /// Fraction of the original work already performed, in `[0, 1]`.
    pub progress: f64,
}

/// Cumulative allocation-churn counters (see
/// [`fill_counters`](ShareResource::fill_counters)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillCounters {
    /// Mutations that invalidated the allocation (add/remove/capacity/…).
    pub churn_ops: u64,
    /// Water-filling passes actually executed. `churn_ops - fills` is the
    /// number of recomputes avoided by same-timestamp coalescing.
    pub fills: u64,
}

/// Max-min fair shared resource. Work and capacity units are arbitrary but
/// must match (e.g. bytes and bytes/second).
#[derive(Debug, Clone)]
pub struct ShareResource {
    capacity: f64,
    tasks: BTreeMap<TaskId, Task>,
    last_update: SimTime,
    epoch: u64,
    next_id: u64,
    /// Total work ever completed (for utilization accounting).
    completed_work: f64,
    /// True when a mutation has invalidated `rate` fields and the heap.
    dirty: bool,
    /// Min-heap of projected completions `(done_at, generation, id)`.
    /// Entries are pushed at fill time; `done_at` is invariant under
    /// [`advance`] at constant rates, so no re-projection is needed.
    heap: BinaryHeap<Reverse<(SimTime, u64, TaskId)>>,
    next_gen: u64,
    counters: FillCounters,
}

impl ShareResource {
    /// A resource serving `capacity` work units per second.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive, got {capacity}"
        );
        ShareResource {
            capacity,
            tasks: BTreeMap::new(),
            last_update: SimTime::ZERO,
            epoch: 0,
            next_id: 0,
            completed_work: 0.0,
            dirty: false,
            heap: BinaryHeap::new(),
            next_gen: 0,
            counters: FillCounters::default(),
        }
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Change total capacity (e.g. cores taken away for other duties).
    /// A capacity of exactly `0.0` is allowed — an injected fault can stall
    /// the resource completely; every task then runs at rate 0 and
    /// [`next_completion`] reports no upcoming completion rather than an
    /// infinite span.
    pub fn set_capacity(&mut self, now: SimTime, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "capacity must be finite and >= 0, got {capacity}"
        );
        self.advance(now);
        self.capacity = capacity;
        self.bump();
    }

    /// Current membership-change epoch. Completion ticks must carry this.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Submit `work` units with a per-task rate cap of `cap` units/second.
    pub fn add(&mut self, now: SimTime, work: f64, cap: f64) -> TaskId {
        assert!(
            work.is_finite() && work >= 0.0,
            "work must be >= 0, got {work}"
        );
        assert!(cap.is_finite() && cap > 0.0, "cap must be > 0, got {cap}");
        self.advance(now);
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.insert(
            id,
            Task {
                remaining: work,
                total: work,
                cap,
                rate: 0.0,
                gen: u64::MAX,
            },
        );
        self.bump();
        id
    }

    /// Withdraw a task (e.g. a kernel interrupted by the DOSAS runtime).
    /// Returns its residual work, or `None` if the id is unknown/completed.
    pub fn remove(&mut self, now: SimTime, id: TaskId) -> Option<RemovedTask> {
        self.advance(now);
        let task = self.tasks.remove(&id)?;
        self.bump();
        let progress = if task.total > 0.0 {
            ((task.total - task.remaining) / task.total).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Some(RemovedTask {
            remaining: task.remaining.max(0.0),
            progress,
        })
    }

    /// Apply progress at the current rates up to `now`.
    ///
    /// If a pending (coalesced) mutation left the rates stale, they are
    /// flushed *before* progress is applied — the stale interval
    /// `[last_update, now)` still began at the mutation timestamp, so the
    /// freshly filled rates are exactly the ones that governed it.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "advance must move forward");
        let dt = (now - self.last_update).as_secs_f64();
        if dt > 0.0 {
            self.ensure_rates();
            for task in self.tasks.values_mut() {
                let done = task.rate * dt;
                task.remaining = (task.remaining - done).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// The earliest time any current task completes, given current rates.
    /// `None` if the resource is idle, or if every task is rate-starved
    /// (capacity forced to 0 by a fault) — a starved task never completes,
    /// so it contributes no (infinite) completion time.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        self.ensure_rates();
        while let Some(&Reverse((t, gen, id))) = self.heap.peek() {
            match self.tasks.get(&id) {
                Some(task) if task.gen == gen => return Some(t),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Advance to `now`, then remove and return every finished task
    /// (work would complete within half a clock tick).
    pub fn take_completed(&mut self, now: SimTime) -> Vec<TaskId> {
        self.advance(now);
        self.ensure_rates();
        let done: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.remaining <= t.rate * 0.5e-9 || t.remaining <= 0.0)
            .map(|(&id, _)| id)
            .collect();
        if !done.is_empty() {
            for id in &done {
                if let Some(t) = self.tasks.remove(id) {
                    self.completed_work += t.total;
                }
            }
            self.bump();
        }
        done
    }

    /// Fraction of `id`'s work already performed, if the task is live.
    pub fn progress(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(&id).map(|t| {
            if t.total > 0.0 {
                ((t.total - t.remaining) / t.total).clamp(0.0, 1.0)
            } else {
                1.0
            }
        })
    }

    /// Residual work of `id`, if live.
    pub fn remaining(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(&id).map(|t| t.remaining.max(0.0))
    }

    /// Current service rate of `id`, if live.
    pub fn rate_of(&mut self, id: TaskId) -> Option<f64> {
        self.ensure_rates();
        self.tasks.get(&id).map(|t| t.rate)
    }

    /// Sum of current rates divided by capacity, in `[0, 1]`.
    /// A zero-capacity (fault-stalled) resource reports 0.
    pub fn utilization(&mut self) -> f64 {
        self.ensure_rates();
        if self.capacity <= 0.0 {
            return 0.0;
        }
        let used: f64 = self.tasks.values().map(|t| t.rate).sum();
        (used / self.capacity).clamp(0.0, 1.0)
    }

    /// Total work completed through this resource so far.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Cumulative churn/fill counters; `churn_ops - fills` recomputes were
    /// avoided by coalescing.
    pub fn fill_counters(&self) -> FillCounters {
        self.counters
    }

    fn bump(&mut self) {
        self.epoch += 1;
        self.dirty = true;
        self.counters.churn_ops += 1;
    }

    /// Flush a pending coalesced mutation: one water-filling pass plus a
    /// heap refresh. No-op when the allocation is current.
    fn ensure_rates(&mut self) {
        if self.dirty {
            self.dirty = false;
            self.recompute_rates();
        }
    }

    /// Max-min fair water-filling with per-task caps.
    ///
    /// Visiting tasks in ascending cap order, each takes
    /// `min(cap, remaining_capacity / remaining_tasks)`; a task that cannot
    /// use its fair share donates the surplus to the rest.
    ///
    /// After assigning rates, every task's projected completion is pushed
    /// into the heap under a fresh generation. Tasks with `rate == 0` and
    /// work left get no entry — they will never complete at current rates.
    fn recompute_rates(&mut self) {
        self.counters.fills += 1;
        let n = self.tasks.len();
        if n == 0 {
            return;
        }
        let mut order: Vec<TaskId> = self.tasks.keys().copied().collect();
        order.sort_by(|a, b| {
            let ca = self.tasks[a].cap;
            let cb = self.tasks[b].cap;
            ca.partial_cmp(&cb).unwrap().then(a.cmp(b))
        });
        let mut left = self.capacity;
        let mut remaining_tasks = n;
        for id in order {
            let fair = left / remaining_tasks as f64;
            let task = self.tasks.get_mut(&id).expect("task in order list");
            let rate = task.cap.min(fair);
            task.rate = rate;
            left -= rate;
            remaining_tasks -= 1;
        }
        // Refresh completion projections. Every fill reassigns every rate,
        // so all prior entries are superseded — drop them wholesale instead
        // of leaving them for lazy deletion. Projected absolute times are
        // invariant under `advance` at constant rates, so the fresh entries
        // stay valid until the next fill.
        self.heap.clear();
        for (&id, task) in self.tasks.iter_mut() {
            let done_at = if task.rate > 0.0 {
                Some(self.last_update + SimSpan::from_secs_f64(task.remaining / task.rate))
            } else if task.remaining <= 0.0 {
                Some(self.last_update)
            } else {
                None // starved: never completes at current rates
            };
            if let Some(t) = done_at {
                task.gen = self.next_gen;
                self.heap.push(Reverse((t, self.next_gen, id)));
                self.next_gen += 1;
            } else {
                task.gen = u64::MAX;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_task_runs_at_cap() {
        let mut r = ShareResource::new(1000.0);
        let id = r.add(SimTime::ZERO, 100.0, 250.0);
        assert_eq!(r.rate_of(id), Some(250.0));
        let done_at = r.next_completion().unwrap();
        assert!((done_at.as_secs_f64() - 0.4).abs() < 1e-9);
        assert_eq!(r.take_completed(done_at), vec![id]);
        assert!(r.is_empty());
    }

    #[test]
    fn capacity_splits_fairly() {
        let mut r = ShareResource::new(100.0);
        let a = r.add(SimTime::ZERO, 100.0, 1000.0);
        let b = r.add(SimTime::ZERO, 100.0, 1000.0);
        assert_eq!(r.rate_of(a), Some(50.0));
        assert_eq!(r.rate_of(b), Some(50.0));
        // Both finish together at t = 2 s.
        let t = r.next_completion().unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
        let mut done = r.take_completed(t);
        done.sort();
        assert_eq!(done, vec![a, b]);
    }

    #[test]
    fn capped_task_donates_surplus() {
        let mut r = ShareResource::new(100.0);
        let slow = r.add(SimTime::ZERO, 10.0, 10.0);
        let fast = r.add(SimTime::ZERO, 10.0, 1000.0);
        // slow takes its cap (10); fast gets the remaining 90.
        assert_eq!(r.rate_of(slow), Some(10.0));
        assert_eq!(r.rate_of(fast), Some(90.0));
    }

    #[test]
    fn departure_speeds_up_survivors() {
        let mut r = ShareResource::new(100.0);
        let a = r.add(SimTime::ZERO, 100.0, 1000.0);
        let b = r.add(SimTime::ZERO, 100.0, 1000.0);
        // At t=1s, each has done 50 units. Remove b.
        let removed = r.remove(secs(1.0), b).unwrap();
        assert!((removed.remaining - 50.0).abs() < 1e-9);
        assert!((removed.progress - 0.5).abs() < 1e-9);
        // a now runs at 100; its 50 residual units finish at t=1.5s.
        assert_eq!(r.rate_of(a), Some(100.0));
        let t = r.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn epoch_moves_on_every_change() {
        let mut r = ShareResource::new(10.0);
        let e0 = r.epoch();
        let id = r.add(SimTime::ZERO, 5.0, 10.0);
        assert_ne!(r.epoch(), e0);
        let e1 = r.epoch();
        r.remove(SimTime::ZERO, id);
        assert_ne!(r.epoch(), e1);
        let e2 = r.epoch();
        r.set_capacity(SimTime::ZERO, 20.0);
        assert_ne!(r.epoch(), e2);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut r = ShareResource::new(10.0);
        let id = r.add(SimTime::ZERO, 0.0, 10.0);
        let t = r.next_completion().unwrap();
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(r.take_completed(t), vec![id]);
    }

    #[test]
    fn utilization_reflects_caps() {
        let mut r = ShareResource::new(100.0);
        r.add(SimTime::ZERO, 10.0, 25.0);
        assert!((r.utilization() - 0.25).abs() < 1e-12);
        r.add(SimTime::ZERO, 10.0, 25.0);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn late_joiner_shares_from_arrival() {
        // a: 100 units alone for 0.5 s at rate 100 -> 50 left.
        // b joins at 0.5 s; both run at 50 -> a finishes at 1.5 s.
        let mut r = ShareResource::new(100.0);
        let a = r.add(SimTime::ZERO, 100.0, 1000.0);
        let _b = r.add(secs(0.5), 100.0, 1000.0);
        assert_eq!(r.rate_of(a), Some(50.0));
        let t = r.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(r.take_completed(t), vec![a]);
    }

    #[test]
    fn completed_work_accumulates() {
        let mut r = ShareResource::new(10.0);
        r.add(SimTime::ZERO, 5.0, 10.0);
        let t = r.next_completion().unwrap();
        r.take_completed(t);
        assert!((r.completed_work() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cap must be > 0")]
    fn zero_cap_rejected() {
        let mut r = ShareResource::new(10.0);
        r.add(SimTime::ZERO, 1.0, 0.0);
    }

    #[test]
    fn zero_capacity_stalls_without_panicking() {
        // A fault can force capacity to exactly 0: rates drop to 0, no
        // completion is projected (previously an infinite span), and
        // restoring capacity resumes the residual work.
        let mut r = ShareResource::new(10.0);
        let id = r.add(SimTime::ZERO, 10.0, 10.0);
        r.set_capacity(secs(0.5), 0.0); // 5 units done so far
        assert_eq!(r.rate_of(id), Some(0.0));
        assert_eq!(r.next_completion(), None);
        assert_eq!(r.utilization(), 0.0);
        // Nothing progresses while stalled.
        r.advance(secs(5.0));
        assert!((r.remaining(id).unwrap() - 5.0).abs() < 1e-9);
        // Restore: 5 residual units at rate 10 finish 0.5 s later.
        r.set_capacity(secs(5.0), 10.0);
        let t = r.next_completion().unwrap();
        assert!((t.as_secs_f64() - 5.5).abs() < 1e-9);
        assert_eq!(r.take_completed(t), vec![id]);
    }

    #[test]
    fn coalesced_mutations_fill_once() {
        let mut r = ShareResource::new(100.0);
        let base = r.fill_counters();
        let a = r.add(SimTime::ZERO, 10.0, 1000.0);
        let b = r.add(SimTime::ZERO, 10.0, 1000.0);
        let _c = r.add(SimTime::ZERO, 10.0, 1000.0);
        r.remove(SimTime::ZERO, b);
        // Four mutations, zero observations: no fill has run yet.
        let mid = r.fill_counters();
        assert_eq!(mid.churn_ops - base.churn_ops, 4);
        assert_eq!(mid.fills, base.fills);
        // First observation flushes exactly one pass.
        assert_eq!(r.rate_of(a), Some(50.0));
        let after = r.fill_counters();
        assert_eq!(after.fills, mid.fills + 1);
        // A second observation with no churn costs nothing.
        let _ = r.next_completion();
        assert_eq!(r.fill_counters().fills, after.fills);
    }

    #[test]
    fn heap_skips_stale_entries_after_churn() {
        let mut r = ShareResource::new(100.0);
        let a = r.add(SimTime::ZERO, 100.0, 1000.0);
        let _ = r.next_completion(); // entry for a at t=1
        let b = r.add(SimTime::ZERO, 10.0, 1000.0);
        let _ = r.next_completion(); // entries for a (t=2) and b (t=0.2)
        r.remove(SimTime::ZERO, b);
        // b's entries are stale; a is alone again and finishes at t=1.
        let t = r.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(r.rate_of(a), Some(100.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Max-min fairness invariants after an arbitrary set of arrivals:
    /// no task exceeds its cap; the capacity is never oversubscribed; and if
    /// capacity is left over, every task is pinned at its own cap.
    #[test]
    fn rates_satisfy_max_min() {
        proptest!(|(caps in proptest::collection::vec(0.01f64..100.0, 1..40),
                    capacity in 0.1f64..500.0)| {
            let mut r = ShareResource::new(capacity);
            let ids: Vec<TaskId> = caps
                .iter()
                .map(|&c| r.add(SimTime::ZERO, 1.0, c))
                .collect();
            let rates: Vec<f64> = ids.iter().map(|&id| r.rate_of(id).unwrap()).collect();
            let total: f64 = rates.iter().sum();
            prop_assert!(total <= capacity * (1.0 + 1e-9));
            for (rate, cap) in rates.iter().zip(caps.iter()) {
                prop_assert!(*rate <= cap * (1.0 + 1e-9));
                prop_assert!(*rate >= 0.0);
            }
            if total < capacity * (1.0 - 1e-9) {
                // Leftover capacity => every task must be at its cap.
                for (rate, cap) in rates.iter().zip(caps.iter()) {
                    prop_assert!((rate - cap).abs() <= cap * 1e-9);
                }
            }
        });
    }

    /// Work conservation: tasks all submitted at t=0 with equal caps complete
    /// exactly when the integral of their service rate equals their work.
    #[test]
    fn equal_tasks_complete_at_analytic_time() {
        proptest!(|(n in 1usize..30, work in 1.0f64..1000.0, capacity in 1.0f64..1000.0)| {
            let mut r = ShareResource::new(capacity);
            for _ in 0..n {
                r.add(SimTime::ZERO, work, capacity * 2.0);
            }
            let expect = n as f64 * work / capacity;
            let t = r.next_completion().unwrap();
            prop_assert!((t.as_secs_f64() - expect).abs() < 1e-6 * expect.max(1.0));
            let done = r.take_completed(t);
            prop_assert_eq!(done.len(), n);
        });
    }

    /// Removing and re-adding a task's residual work must not create or
    /// destroy work: the end-to-end completion time matches a task that was
    /// never interrupted (single-task case, constant rate).
    #[test]
    fn interruption_conserves_work() {
        proptest!(|(work in 1.0f64..100.0, cut in 0.05f64..0.95)| {
            let capacity = 10.0;
            // Uninterrupted reference.
            let expect = work / capacity;

            let mut r = ShareResource::new(capacity);
            let id = r.add(SimTime::ZERO, work, capacity);
            let cut_at = SimTime::from_secs_f64(expect * cut);
            let removed = r.remove(cut_at, id).unwrap();
            let id2 = r.add(cut_at, removed.remaining, capacity);
            let t = r.next_completion().unwrap();
            prop_assert!((t.as_secs_f64() - expect).abs() < 1e-6);
            prop_assert_eq!(r.take_completed(t), vec![id2]);
        });
    }

    /// Oracle: a lazily coalesced op batch must produce bit-identical rates
    /// and completion projections to a mirror resource that is forced to
    /// flush (observe rates) after every single operation.
    #[test]
    fn coalesced_fill_matches_eager_fill() {
        // Op encoding: (kind, work, cap-or-capacity, victim-index).
        // kind 0 => Add{work, cap}; 1 => Remove(victim); 2 => SetCapacity.
        let op = || (0u8..3, 0.1f64..100.0, 0.0f64..300.0, 0usize..64);
        proptest!(|(batches in collection::vec(
                        (collection::vec(op(), 1..8), 0.0f64..0.5),
                        1..12))| {
            let mut lazy = ShareResource::new(100.0);
            let mut eager = ShareResource::new(100.0);
            let mut now = SimTime::ZERO;
            let mut lazy_ids: Vec<TaskId> = Vec::new();
            let mut eager_ids: Vec<TaskId> = Vec::new();
            for (ops, dt) in batches {
                now += SimSpan::from_secs_f64(dt);
                for (kind, work, c, victim) in ops {
                    match kind {
                        0 => {
                            let cap = c.max(0.1); // per-task cap must stay > 0
                            lazy_ids.push(lazy.add(now, work, cap));
                            eager_ids.push(eager.add(now, work, cap));
                        }
                        1 => {
                            if !lazy_ids.is_empty() {
                                let i = victim % lazy_ids.len();
                                lazy.remove(now, lazy_ids.remove(i));
                                eager.remove(now, eager_ids.remove(i));
                            }
                        }
                        _ => {
                            lazy.set_capacity(now, c);
                            eager.set_capacity(now, c);
                        }
                    }
                    // Force the eager mirror to fill after every op.
                    for &id in &eager_ids {
                        let _ = eager.rate_of(id);
                    }
                }
                // End of coalesced batch: both sides observed once.
                prop_assert_eq!(
                    lazy.next_completion(), eager.next_completion(),
                    "completion projections diverged"
                );
                for (&l, &e) in lazy_ids.iter().zip(eager_ids.iter()) {
                    let lr = lazy.rate_of(l).unwrap();
                    let er = eager.rate_of(e).unwrap();
                    prop_assert_eq!(lr.to_bits(), er.to_bits(), "rates diverged");
                    let lrem = lazy.remaining(l).unwrap();
                    let erem = eager.remaining(e).unwrap();
                    prop_assert_eq!(lrem.to_bits(), erem.to_bits(), "remaining diverged");
                }
            }
        });
    }
}
