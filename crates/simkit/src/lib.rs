//! # simkit — deterministic discrete-event simulation engine
//!
//! The substrate underneath the DOSAS reproduction: a small, fast,
//! fully deterministic discrete-event simulation (DES) core.
//!
//! Components:
//!
//! * [`time`] — integer-nanosecond simulation clock ([`SimTime`], [`SimSpan`]).
//! * [`event`] — a stable-order event queue (FIFO among equal timestamps).
//! * [`executor`] — the [`executor::World`] trait and run loop.
//! * [`component`] — [`component::Component`]/[`component::Routed`]: split a
//!   world into event-routed subsystems without changing its event schedule.
//! * [`lane`] — [`lane::LaneQueue`]/[`lane::Laned`]: the event queue sharded
//!   into per-server lanes and batched through an adaptive lookahead window;
//!   order-identical to [`event::EventQueue`] but with O(1) lane operations
//!   and alloc-free whole-timestamp batch pops, the substrate for
//!   [`ParallelSimulation`].
//! * [`share`] — a generalized processor-sharing resource with max-min fair
//!   allocation and epoch-based completion-event invalidation; models
//!   multi-core CPUs and fair-share network links.
//! * [`fifo`] — a multi-server FIFO queueing resource; models disks and
//!   request queues with explicit service times.
//! * [`stats`] — time-weighted statistics, tallies and series recorders.
//! * [`rng`] — seed-derived deterministic random streams.
//! * [`fault`] — deterministic, seed-driven fault plans (time-windowed
//!   resource degradation, probe loss/delay) applied by the owning world.
//! * [`span`] — causal span chains: contiguous hop tiling of an interval
//!   with an exact service/wait split per hop, the substrate for
//!   per-request latency attribution.
//!
//! Design notes:
//!
//! * All state lives in plain structs owned by the caller's `World`; there is
//!   no interior mutability and no global state, so simulations are trivially
//!   reproducible and `Send`.
//! * Resources never schedule events themselves. They expose
//!   "next interesting time" queries plus an *epoch*; the world schedules a
//!   tick carrying the epoch and ignores the tick if the epoch moved on.
//!   Worlds that track their pending tick can additionally revoke a
//!   superseded one via [`Scheduler::cancel`] (lazy tombstones in both
//!   queue backends), so stale ticks need not be dispatched at all.

pub mod component;
pub mod event;
pub mod executor;
pub mod fault;
pub mod fifo;
pub mod lane;
pub mod rng;
pub mod share;
pub mod span;
pub mod stats;
pub mod time;

pub use component::{Component, Routed};
pub use event::EventQueue;
pub use executor::{
    BatchWorld, DispatchStat, EventHandle, ExecPool, ExecProfile, ParallelSimulation, Scheduler,
    Simulation, World,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use fifo::FifoServer;
pub use lane::{Lane, LaneQueue, Laned, LookaheadStats};
pub use rng::RngFactory;
pub use share::{ShareResource, TaskId};
pub use span::{Hop, SpanChain};
pub use time::{SimSpan, SimTime};
