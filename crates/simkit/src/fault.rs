//! Deterministic fault injection for simulated clusters.
//!
//! A [`FaultPlan`] is plain data: a list of time-windowed [`FaultEvent`]s
//! targeting nodes (by plain index — simkit knows nothing about node roles).
//! The world that owns the plan queries it at event boundaries and applies
//! the effects to its resources; the plan never schedules anything itself,
//! keeping the substrate's "resources never schedule events" invariant.
//!
//! Plans are either hand-built (named test scenarios) or derived from a
//! seeded RNG ([`FaultPlan::random_storm`]), so every run is reproducible:
//! same seed → same plan → same event trace.

use crate::{SimSpan, SimTime};
use rand::Rng;

/// What goes wrong. Factors are multiplicative in `[0, 1]`; `1.0` is a
/// no-op and `0.0` a full stall for the window.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Node CPU capacity is multiplied by `factor` (background load spike,
    /// thermal throttling, a co-scheduled job...).
    CpuSlowdown { factor: f64 },
    /// The node's disk serves nothing for the window (firmware hiccup,
    /// internal GC; the queue keeps accepting work).
    DiskStall,
    /// The node's NIC bandwidth (both directions) is multiplied by `factor`.
    NetBandwidthDip { factor: f64 },
    /// Contention-estimator probes of this node are lost outright.
    ProbeLoss,
    /// Probe replies from this node arrive `delay` late.
    ProbeDelay { delay: SimSpan },
    /// Checkpoint shipments (interrupted-kernel state) from this node fail
    /// after consuming their transfer time.
    CheckpointShipFailure,
    /// The node leaves the cluster for the window: CPU capacity drops to
    /// zero, its disk stalls, its network links carry nothing, and probes of
    /// it are lost. A window ending at `t` models a (re)join at `t`, so an
    /// elastic pool that grows at `t_join` is a leave over `[0, t_join)`.
    NodeLeave,
}

/// One fault: `kind` afflicts `node` during `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub node: usize,
    pub kind: FaultKind,
    pub start: SimTime,
    pub end: SimTime,
}

impl FaultEvent {
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }
}

/// A deterministic schedule of faults. See the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one fault window. Builder-style so named scenarios read linearly.
    pub fn inject(
        mut self,
        node: usize,
        kind: FaultKind,
        start: SimTime,
        duration: SimSpan,
    ) -> Self {
        if let FaultKind::CpuSlowdown { factor } | FaultKind::NetBandwidthDip { factor } = &kind {
            assert!(
                (0.0..=1.0).contains(factor),
                "fault factor {factor} outside [0, 1]"
            );
        }
        assert!(duration > SimSpan::ZERO, "fault window must be non-empty");
        self.events.push(FaultEvent {
            node,
            kind,
            start,
            end: start + duration,
        });
        self
    }

    /// Membership convenience: `node` is absent during `[start, start +
    /// duration)`. Sugar for `inject(node, FaultKind::NodeLeave, ...)`.
    pub fn node_leave(self, node: usize, start: SimTime, duration: SimSpan) -> Self {
        self.inject(node, FaultKind::NodeLeave, start, duration)
    }

    /// Membership convenience: `node` joins the cluster at `join` — i.e. it
    /// is absent over `[0, join)`.
    pub fn node_join(self, node: usize, join: SimTime) -> Self {
        assert!(join > SimTime::ZERO, "a join at t=0 is a no-op");
        self.inject(
            node,
            FaultKind::NodeLeave,
            SimTime::ZERO,
            join - SimTime::ZERO,
        )
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Faults afflicting `node` at `now`.
    pub fn active(&self, now: SimTime, node: usize) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.node == node && e.active_at(now))
    }

    /// Fault windows on `node` overlapping the half-open interval
    /// `[start, end)` — used for after-the-fact wait attribution: a hop
    /// that spent `[start, end)` queued on a node can ask whether a stall
    /// window intersected it.
    pub fn overlapping(
        &self,
        start: SimTime,
        end: SimTime,
        node: usize,
    ) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.node == node && e.start < end && start < e.end)
    }

    /// Combined CPU capacity factor for `node` at `now` (product of active
    /// slowdowns; `1.0` when healthy).
    pub fn cpu_factor(&self, now: SimTime, node: usize) -> f64 {
        self.active(now, node)
            .filter_map(|e| match e.kind {
                FaultKind::CpuSlowdown { factor } => Some(factor),
                FaultKind::NodeLeave => Some(0.0),
                _ => None,
            })
            .product()
    }

    /// Is `node` out of the cluster at `now` (an active [`FaultKind::NodeLeave`]
    /// window)? Membership is the owner's concern — this only reports the plan.
    pub fn offline(&self, now: SimTime, node: usize) -> bool {
        self.active(now, node)
            .any(|e| e.kind == FaultKind::NodeLeave)
    }

    /// Combined NIC bandwidth factor for `node` at `now`.
    pub fn net_factor(&self, now: SimTime, node: usize) -> f64 {
        self.active(now, node)
            .filter_map(|e| match e.kind {
                FaultKind::NetBandwidthDip { factor } => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Is a probe of `node` sent at `now` lost? (An offline node answers
    /// nothing, so a leave window also loses probes.)
    pub fn probe_lost(&self, now: SimTime, node: usize) -> bool {
        self.active(now, node)
            .any(|e| matches!(e.kind, FaultKind::ProbeLoss | FaultKind::NodeLeave))
    }

    /// Extra latency on a probe of `node` sent at `now` (max of active
    /// delays), or `None` when replies are prompt.
    pub fn probe_delay(&self, now: SimTime, node: usize) -> Option<SimSpan> {
        self.active(now, node)
            .filter_map(|e| match e.kind {
                FaultKind::ProbeDelay { delay } => Some(delay),
                _ => None,
            })
            .max()
    }

    /// Does a checkpoint shipment leaving `node` at `now` fail?
    pub fn checkpoint_ship_fails(&self, now: SimTime, node: usize) -> bool {
        self.active(now, node)
            .any(|e| e.kind == FaultKind::CheckpointShipFailure)
    }

    /// Disk-stall windows on `node` that begin exactly in `[from, to)` —
    /// used by drivers to inject the blocking request once per window. A
    /// node-leave window stalls the disk too: an absent node serves nothing.
    pub fn disk_stalls_starting(
        &self,
        from: SimTime,
        to: SimTime,
        node: usize,
    ) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| {
            e.node == node
                && matches!(e.kind, FaultKind::DiskStall | FaultKind::NodeLeave)
                && from <= e.start
                && e.start < to
        })
    }

    /// Every window boundary, sorted and deduplicated: the times at which a
    /// driver must re-evaluate fault effects.
    /// Number of fault windows (across all nodes) active at `now` — a cheap
    /// gauge for observability sampling.
    pub fn active_count(&self, now: SimTime) -> usize {
        self.events.iter().filter(|e| e.active_at(now)).count()
    }

    pub fn transition_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self.events.iter().flat_map(|e| [e.start, e.end]).collect();
        times.sort();
        times.dedup();
        times
    }

    /// A seeded random storm: over `[start, start + horizon)`, each listed
    /// node suffers `events_per_node` faults of random kind, onset, and
    /// duration (up to a quarter of the horizon each). Deterministic in the
    /// RNG stream.
    pub fn random_storm<R: Rng>(
        rng: &mut R,
        nodes: &[usize],
        start: SimTime,
        horizon: SimSpan,
        events_per_node: usize,
    ) -> Self {
        assert!(horizon > SimSpan::ZERO);
        let mut plan = FaultPlan::new();
        let horizon_ns = horizon.as_nanos();
        for &node in nodes {
            for _ in 0..events_per_node {
                let onset = SimSpan::from_nanos(rng.random_range(0..horizon_ns));
                let max_dur = (horizon_ns / 4).max(1);
                let duration = SimSpan::from_nanos(rng.random_range(1..=max_dur));
                let kind = match rng.random_range(0u32..6) {
                    0 => FaultKind::CpuSlowdown {
                        factor: rng.random_range(0.1..=0.9),
                    },
                    1 => FaultKind::DiskStall,
                    2 => FaultKind::NetBandwidthDip {
                        factor: rng.random_range(0.1..=0.9),
                    },
                    3 => FaultKind::ProbeLoss,
                    4 => FaultKind::ProbeDelay {
                        delay: SimSpan::from_nanos(rng.random_range(1..=horizon_ns / 8 + 1)),
                    },
                    _ => FaultKind::CheckpointShipFailure,
                };
                plan = plan.inject(node, kind, start + onset, duration);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngFactory;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn span(s: f64) -> SimSpan {
        SimSpan::from_secs_f64(s)
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new().inject(3, FaultKind::ProbeLoss, secs(1.0), span(2.0));
        assert!(!plan.probe_lost(secs(0.999), 3));
        assert!(plan.probe_lost(secs(1.0), 3));
        assert!(plan.probe_lost(secs(2.999), 3));
        assert!(!plan.probe_lost(secs(3.0), 3));
        assert!(!plan.probe_lost(secs(1.5), 4), "other nodes unaffected");
    }

    #[test]
    fn factors_compose_multiplicatively() {
        let plan = FaultPlan::new()
            .inject(
                0,
                FaultKind::CpuSlowdown { factor: 0.5 },
                secs(0.0),
                span(10.0),
            )
            .inject(
                0,
                FaultKind::CpuSlowdown { factor: 0.5 },
                secs(5.0),
                span(10.0),
            );
        assert!((plan.cpu_factor(secs(1.0), 0) - 0.5).abs() < 1e-12);
        assert!((plan.cpu_factor(secs(6.0), 0) - 0.25).abs() < 1e-12);
        assert!((plan.cpu_factor(secs(12.0), 0) - 0.5).abs() < 1e-12);
        assert!((plan.cpu_factor(secs(20.0), 0) - 1.0).abs() < 1e-12);
        assert!((plan.net_factor(secs(1.0), 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probe_delay_takes_the_max() {
        let plan = FaultPlan::new()
            .inject(
                2,
                FaultKind::ProbeDelay { delay: span(0.05) },
                secs(0.0),
                span(4.0),
            )
            .inject(
                2,
                FaultKind::ProbeDelay { delay: span(0.2) },
                secs(1.0),
                span(1.0),
            );
        assert_eq!(plan.probe_delay(secs(0.5), 2), Some(span(0.05)));
        assert_eq!(plan.probe_delay(secs(1.5), 2), Some(span(0.2)));
        assert_eq!(plan.probe_delay(secs(3.0), 2), Some(span(0.05)));
        assert_eq!(plan.probe_delay(secs(5.0), 2), None);
    }

    #[test]
    fn transition_times_sorted_dedup() {
        let plan = FaultPlan::new()
            .inject(0, FaultKind::DiskStall, secs(2.0), span(1.0))
            .inject(1, FaultKind::ProbeLoss, secs(1.0), span(2.0));
        assert_eq!(
            plan.transition_times(),
            vec![secs(1.0), secs(2.0), secs(3.0)]
        );
    }

    #[test]
    fn overlapping_uses_half_open_intersection() {
        let plan = FaultPlan::new().inject(5, FaultKind::DiskStall, secs(2.0), span(1.0));
        assert_eq!(plan.overlapping(secs(0.0), secs(2.0), 5).count(), 0);
        assert_eq!(plan.overlapping(secs(2.5), secs(4.0), 5).count(), 1);
        assert_eq!(plan.overlapping(secs(0.0), secs(9.0), 5).count(), 1);
        assert_eq!(plan.overlapping(secs(3.0), secs(9.0), 5).count(), 0);
        assert_eq!(plan.overlapping(secs(2.0), secs(4.0), 6).count(), 0);
    }

    #[test]
    fn disk_stall_window_query() {
        let plan = FaultPlan::new().inject(5, FaultKind::DiskStall, secs(2.0), span(1.0));
        assert_eq!(
            plan.disk_stalls_starting(secs(0.0), secs(2.0), 5).count(),
            0
        );
        assert_eq!(
            plan.disk_stalls_starting(secs(2.0), secs(2.5), 5).count(),
            1
        );
        assert_eq!(
            plan.disk_stalls_starting(secs(2.5), secs(9.0), 5).count(),
            0
        );
    }

    #[test]
    fn random_storm_is_deterministic_per_seed() {
        let mk = || {
            let mut rng = RngFactory::new(17).stream("storm");
            FaultPlan::random_storm(&mut rng, &[8, 9], secs(0.0), span(10.0), 3)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 6);
        let mut rng = RngFactory::new(18).stream("storm");
        let c = FaultPlan::random_storm(&mut rng, &[8, 9], secs(0.0), span(10.0), 3);
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_factor() {
        let _ = FaultPlan::new().inject(
            0,
            FaultKind::CpuSlowdown { factor: 1.5 },
            secs(0.0),
            span(1.0),
        );
    }

    #[test]
    fn node_leave_is_total_absence() {
        let plan = FaultPlan::new().node_leave(4, secs(1.0), span(2.0));
        assert!(!plan.offline(secs(0.5), 4));
        assert!(plan.offline(secs(1.0), 4));
        assert!(plan.offline(secs(2.999), 4));
        assert!(!plan.offline(secs(3.0), 4), "rejoin at window end");
        assert!(!plan.offline(secs(1.5), 5), "other nodes unaffected");
        // Absence implies: no CPU, lost probes, a stalled disk.
        assert_eq!(plan.cpu_factor(secs(1.5), 4), 0.0);
        assert!(plan.probe_lost(secs(1.5), 4));
        assert_eq!(
            plan.disk_stalls_starting(secs(0.0), secs(2.0), 4).count(),
            1
        );
        // Net links are handled by fabric membership, not the dip factor.
        assert_eq!(plan.net_factor(secs(1.5), 4), 1.0);
    }

    #[test]
    fn node_join_is_a_leave_from_time_zero() {
        let plan = FaultPlan::new().node_join(2, secs(4.0));
        assert!(plan.offline(secs(0.0), 2));
        assert!(plan.offline(secs(3.999), 2));
        assert!(!plan.offline(secs(4.0), 2));
        assert_eq!(plan.transition_times(), vec![secs(0.0), secs(4.0)]);
    }

    #[test]
    fn zero_factor_models_a_full_stall() {
        let plan = FaultPlan::new()
            .inject(
                0,
                FaultKind::CpuSlowdown { factor: 0.0 },
                secs(1.0),
                span(2.0),
            )
            .inject(
                0,
                FaultKind::NetBandwidthDip { factor: 0.0 },
                secs(1.0),
                span(2.0),
            );
        assert_eq!(plan.cpu_factor(secs(2.0), 0), 0.0);
        assert_eq!(plan.net_factor(secs(2.0), 0), 0.0);
        assert_eq!(plan.cpu_factor(secs(4.0), 0), 1.0);
    }
}
