//! Simulation statistics: tallies, time-weighted averages, series.

use crate::time::SimTime;
use serde::Serialize;

/// Streaming min/max/mean/variance over observations (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Tally {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> Option<f64> {
        self.min
    }

    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// utilization, …).
#[derive(Debug, Clone, Serialize)]
pub struct TimeWeighted {
    value: f64,
    since: SimTime,
    integral: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            since: start,
            integral: 0.0,
            start,
            peak: initial,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.since);
        self.integral += self.value * (now - self.since).as_secs_f64();
        self.value = value;
        self.since = now;
        self.peak = self.peak.max(value);
    }

    /// Add `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    pub fn current(&self) -> f64 {
        self.value
    }

    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Cumulative time-weighted integral ∫ value dt over `[start, now]`,
    /// using exactly the float operations [`TimeWeighted::mean`] uses — so a
    /// sampled integral series reconciles bit-for-bit with end-of-run means.
    pub fn integral_at(&self, now: SimTime) -> f64 {
        self.integral + self.value * (now - self.since).as_secs_f64()
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = (now - self.start).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * (now - self.since).as_secs_f64();
        integral / total
    }
}

/// Quantile sketch over observations: exact up to a bounded sample count,
/// then a fixed-budget reservoir-free compaction (keeps every k-th sample).
///
/// Simulation runs observe at most tens of thousands of request latencies,
/// so an exact-but-bounded structure beats an approximate sketch in both
/// simplicity and fidelity.
#[derive(Debug, Clone, Serialize)]
pub struct Quantiles {
    samples: Vec<f64>,
    /// Every `stride`-th observation is kept once the budget is exceeded.
    stride: u64,
    seen: u64,
    budget: usize,
}

impl Default for Quantiles {
    fn default() -> Self {
        Self::new(65_536)
    }
}

impl Quantiles {
    /// Keep at most `budget` samples (compacting 2× when exceeded).
    pub fn new(budget: usize) -> Self {
        assert!(budget >= 2);
        Quantiles {
            samples: Vec::new(),
            stride: 1,
            seen: 0,
            budget,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.stride) {
            self.samples.push(x);
            if self.samples.len() > self.budget {
                // Halve resolution: keep every other retained sample.
                let mut keep = Vec::with_capacity(self.samples.len() / 2);
                for (i, &v) in self.samples.iter().enumerate() {
                    if i % 2 == 1 {
                        keep.push(v);
                    }
                }
                self.samples = keep;
                self.stride *= 2;
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0.0–1.0) of the retained samples;
    /// `None` if nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }

    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// A recorded `(time, value)` series, e.g. for queue-depth traces.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basic_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 4.0).abs() < 1e-12);
        assert!((t.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn empty_tally_is_nan() {
        let t = Tally::new();
        assert!(t.mean().is_nan());
        assert!(t.variance().is_nan());
        assert_eq!(t.min(), None);
    }

    #[test]
    fn time_weighted_mean() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 0.0);
        // 0 for 1 s, then 10 for 1 s: mean = 5.
        w.set(SimTime::from_secs_f64(1.0), 10.0);
        let m = w.mean(SimTime::from_secs_f64(2.0));
        assert!((m - 5.0).abs() < 1e-9);
        assert_eq!(w.peak(), 10.0);
        assert_eq!(w.current(), 10.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 1.0);
        w.add(SimTime::from_secs_f64(1.0), 2.0);
        assert_eq!(w.current(), 3.0);
        w.add(SimTime::from_secs_f64(2.0), -3.0);
        assert_eq!(w.current(), 0.0);
        // 1 for 1 s + 3 for 1 s + 0 for 1 s => mean 4/3 at t=3.
        let m = w.mean(SimTime::from_secs_f64(3.0));
        assert!((m - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_mean_at_start_is_current() {
        let w = TimeWeighted::new(SimTime::ZERO, 7.0);
        assert_eq!(w.mean(SimTime::ZERO), 7.0);
    }

    #[test]
    fn quantiles_exact_within_budget() {
        let mut q = Quantiles::new(1000);
        for i in 1..=100 {
            q.record(i as f64);
        }
        assert_eq!(q.count(), 100);
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(100.0));
        assert_eq!(q.median(), Some(51.0)); // nearest-rank on 1..=100
        assert_eq!(q.p95(), Some(95.0));
    }

    #[test]
    fn quantiles_compact_beyond_budget() {
        let mut q = Quantiles::new(16);
        for i in 0..10_000 {
            q.record(i as f64);
        }
        assert_eq!(q.count(), 10_000);
        // Retained sample set is bounded but quantiles stay sane.
        let median = q.median().unwrap();
        assert!((median - 5_000.0).abs() < 1_500.0, "median {median}");
        let p99 = q.p99().unwrap();
        assert!(p99 > 8_000.0, "p99 {p99}");
    }

    #[test]
    fn quantiles_empty_is_none() {
        let q = Quantiles::default();
        assert_eq!(q.median(), None);
    }

    #[test]
    fn series_records_points() {
        let mut s = Series::new();
        assert!(s.is_empty());
        s.push(SimTime::ZERO, 1.0);
        s.push(SimTime::from_nanos(5), 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((SimTime::from_nanos(5), 2.0)));
        assert_eq!(s.points()[0], (SimTime::ZERO, 1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tally_matches_naive_computation() {
        proptest!(|(xs in proptest::collection::vec(-1e3f64..1e3, 1..200))| {
            let mut t = Tally::new();
            for &x in &xs {
                t.record(x);
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((t.mean() - mean).abs() < 1e-6);
            prop_assert!((t.variance() - var).abs() < 1e-4);
        });
    }
}
