//! Contention anatomy: watch the Contention Estimator react to a second
//! wave of requests — admissions, demotions and mid-kernel interruptions —
//! and verify that migrated kernels still produce bit-exact results.
//!
//! ```text
//! cargo run --release --example contention_study
//! ```

use dosas_repro::prelude::*;
use kernels::calibrate::synthetic_image;
use kernels::{GaussianFilter2D, GaussianOutput};

fn main() {
    println!("contention_study — two-wave workload against one storage node\n");

    // ---- timing plane: policy dynamics across probe periods ----
    println!("wave 1: 4 Gaussians at t=0; wave 2: 4 more at t=0.5 s (128 MB each)");
    println!(
        "{:>9}  {:>12}  {:>8}  {:>8}  {:>11}",
        "scheme", "makespan (s)", "active", "demoted", "interrupted"
    );
    for (label, scheme) in [
        ("TS", Scheme::Traditional),
        ("AS", Scheme::ActiveStorage),
        ("DOSAS", Scheme::dosas_default()),
    ] {
        let w = Workload::two_waves(
            8,
            1,
            128 << 20,
            "gaussian2d",
            KernelParams::with_width(4096),
            SimSpan::from_millis(500),
        );
        let m = Driver::run(DriverConfig::paper(scheme), &w);
        println!(
            "{label:>9}  {:>12.2}  {:>8}  {:>8}  {:>11}",
            m.makespan_secs, m.runtime.completed_active, m.runtime.demoted, m.runtime.interrupted
        );
    }

    // Policy log: what the CE decided over time.
    let w = Workload::two_waves(
        8,
        1,
        128 << 20,
        "gaussian2d",
        KernelParams::with_width(4096),
        SimSpan::from_millis(500),
    );
    let m = Driver::run(DriverConfig::paper(Scheme::dosas_default()), &w);
    println!("\nContention Estimator decisions (DOSAS run):");
    for e in m.policy_log.iter().take(12) {
        println!(
            "  t={:<10} queue k={:<2} → keep {} active, demote {} (predicted {:.2} s)",
            format!("{:.3}s", e.time.as_secs_f64()),
            e.k,
            e.kept_active,
            e.demoted,
            e.predicted_time
        );
    }

    // ---- data plane: migration correctness under interruption ----
    let width = 128usize;
    let image = synthetic_image(width, 512);
    let bytes = image.len() as u64;
    let mut w = Workload::two_waves(
        6,
        1,
        bytes,
        "gaussian2d",
        KernelParams::with_width(width as u64),
        SimSpan::from_millis(50),
    );
    w.files[0].content = Some(image.clone());

    // Slow the simulated kernel so wave-1 kernels are genuinely mid-flight
    // when wave 2 lands (the file is small).
    let mut cfg = DriverConfig::paper(Scheme::dosas_default());
    let mut rates = OpRates::paper();
    rates.set(
        "gaussian2d",
        (1u64 << 20) as f64,
        dosas::cost::ResultModel::fixed(32),
    );
    cfg.rates = rates;
    cfg.data_plane = true;
    let m = Driver::run(cfg, &w);

    let mut reference = GaussianFilter2D::new(width, GaussianOutput::Digest).unwrap();
    reference.process_chunk(&image);
    let expect = reference.finalize();
    let all_match = m.results.values().all(|r| r == &expect);
    println!(
        "\ndata plane: {} requests, {} interrupted mid-kernel and migrated;",
        m.results.len(),
        m.runtime.interrupted
    );
    println!(
        "all digests identical to an uninterrupted reference run: {}",
        if all_match { "yes ✓" } else { "NO — bug!" }
    );
    assert!(all_match);
}
