//! Exascale projection: the paper's motivation, pushed further.
//!
//! §I argues from machines like ANL's Intrepid — 64 compute nodes per I/O
//! node — toward exascale systems with "at least a billion threads of
//! execution": the more compute concurrency stacks up behind each storage
//! node, the worse naïve active storage gets, and the more a dynamic
//! scheduler matters. This example sweeps the request concurrency per
//! storage node well past the paper's 64 and reports all four schemes
//! (including the partial-offload extension).
//!
//! ```text
//! cargo run --release --example exascale_projection
//! ```

use dosas_repro::prelude::*;

fn main() {
    println!("exascale_projection — Gaussian analysis, 128 MB per process\n");
    println!(
        "{:>9}  {:>8}  {:>8}  {:>8}  {:>9}  {:>22}",
        "procs/IO", "TS (s)", "AS (s)", "DOSAS(s)", "SPLIT(s)", "DOSAS policy"
    );

    for n in [4usize, 16, 64, 128, 256] {
        let workload = Workload::uniform_active(
            n,
            1,
            128 << 20,
            "gaussian2d",
            KernelParams::with_width(4096),
        );
        let run = |scheme: Scheme| Driver::run(DriverConfig::paper(scheme), &workload);
        let ts = run(Scheme::Traditional);
        let as_ = run(Scheme::ActiveStorage);
        let ds = run(Scheme::dosas_default());
        let sp = run(Scheme::dosas_partial());
        let policy = format!(
            "{} offloaded, {} demoted",
            ds.runtime.completed_active, ds.runtime.demoted
        );
        println!(
            "{:>9}  {:>8.1}  {:>8.1}  {:>8.1}  {:>9.1}  {:>22}",
            n, ts.makespan_secs, as_.makespan_secs, ds.makespan_secs, sp.makespan_secs, policy
        );
    }

    println!(
        "\nAs the compute:storage ratio grows (Intrepid was 64:1; exascale\n\
         designs are worse), naïve offloading degrades linearly in the\n\
         number of concurrent kernels, the dynamic scheduler pins itself to\n\
         the wire-limited traditional path, and fractional offloading keeps\n\
         the storage CPU *and* the wire busy — the gap it opens over DOSAS\n\
         is pure contention-era headroom."
    );

    // Second axis: hold 64 processes, vary how many storage nodes they
    // spread across (1:64 → 8:8).
    println!("\n64 processes spread over more storage nodes (128 MB each):");
    println!(
        "{:>13}  {:>8}  {:>8}  {:>9}",
        "storage nodes", "AS (s)", "DOSAS(s)", "SPLIT(s)"
    );
    for servers in [1usize, 2, 4, 8] {
        let per = 64 / servers;
        let workload = Workload::uniform_active(
            per,
            servers,
            128 << 20,
            "gaussian2d",
            KernelParams::with_width(4096),
        );
        let run = |scheme: Scheme| {
            let mut cfg = DriverConfig::paper(scheme);
            cfg.cluster.storage_nodes = servers;
            Driver::run(cfg, &workload).makespan_secs
        };
        println!(
            "{:>13}  {:>8.1}  {:>8.1}  {:>9.1}",
            servers,
            run(Scheme::ActiveStorage),
            run(Scheme::dosas_default()),
            run(Scheme::dosas_partial()),
        );
    }
}
