//! Quickstart: run the paper's benchmark under all three schemes and watch
//! the dynamic scheduler pick the right side of the crossover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dosas_repro::prelude::*;

fn main() {
    println!("DOSAS quickstart — 2-D Gaussian filter, 128 MB per request\n");
    println!(
        "{:>6}  {:>9}  {:>9}  {:>9}   note",
        "n_ios", "TS (s)", "AS (s)", "DOSAS (s)"
    );

    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        // n processes, each issuing one MPI_File_read_ex("gaussian2d")
        // against a single 2-core storage node (1 core free for kernels).
        let workload = Workload::uniform_active(
            n,
            1,
            128 << 20,
            "gaussian2d",
            KernelParams::with_width(4096),
        );

        let run = |scheme: Scheme| Driver::run(DriverConfig::paper(scheme), &workload);
        let ts = run(Scheme::Traditional);
        let as_ = run(Scheme::ActiveStorage);
        let ds = run(Scheme::dosas_default());

        let note = if ds.runtime.demoted > 0 {
            format!(
                "DOSAS demoted {} of {} active requests",
                ds.runtime.demoted, n
            )
        } else {
            "DOSAS kept everything on the storage node".to_string()
        };
        println!(
            "{:>6}  {:>9.2}  {:>9.2}  {:>9.2}   {note}",
            n, ts.makespan_secs, as_.makespan_secs, ds.makespan_secs
        );
    }

    println!(
        "\nShape to notice (paper Figs. 4/7): active storage wins while the\n\
         storage node has CPU headroom (n <= ~3) and collapses beyond it;\n\
         DOSAS follows the lower envelope by demoting active I/O on the fly."
    );
}
