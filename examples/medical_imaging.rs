//! Medical imaging: 2-D Gaussian smoothing of an image stack — the paper's
//! motivating workload ("widely used in … medical image processing").
//!
//! Two planes in one example:
//!
//! 1. **Data plane** — really filter a synthetic CT-like slice stack with
//!    the streaming, checkpointable Gaussian kernel, and cross-check it
//!    against the whole-image reference implementation.
//! 2. **Performance plane** — simulate a hospital archive node serving many
//!    concurrent smoothing requests under TS / AS / DOSAS to decide where
//!    the filtering should run.
//!
//! ```text
//! cargo run --release --example medical_imaging
//! ```

use dosas_repro::prelude::*;
use kernels::gaussian::{filter_image, GaussianFilter2D, GaussianOutput};

fn synth_slice(width: usize, height: usize, z: usize) -> Vec<f32> {
    // Smooth blobs plus per-slice noise, vaguely tissue-like.
    let mut img = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let fx = x as f32 / width as f32 - 0.5;
            let fy = y as f32 / height as f32 - 0.5;
            let r = (fx * fx + fy * fy).sqrt();
            let blob = (1.0 - 4.0 * r).max(0.0) * 900.0;
            let noise = (((x * 7 + y * 13 + z * 31) % 97) as f32) - 48.0;
            img.push(blob + noise + 100.0);
        }
    }
    img
}

fn main() {
    let (width, height, slices) = (256usize, 256usize, 8usize);
    println!("medical_imaging — {slices} slices of {width}×{height} f32 pixels\n");

    // ---- data plane: actually filter the stack ----
    let mut checkpoints = 0u32;
    for z in 0..slices {
        let slice = synth_slice(width, height, z);
        let bytes: Vec<u8> = slice.iter().flat_map(|v| v.to_le_bytes()).collect();

        // Stream the slice through the active-storage kernel in 64 KiB
        // chunks, checkpoint/restore halfway (exactly what the DOSAS
        // runtime does when it migrates a kernel mid-request).
        let mut k = GaussianFilter2D::new(width, GaussianOutput::Full).unwrap();
        let cut = bytes.len() / 2;
        for chunk in bytes[..cut].chunks(64 << 10) {
            k.process_chunk(chunk);
        }
        let state = k.checkpoint(); // ⟨name, type, value⟩ records
        checkpoints += 1;
        let mut k = GaussianFilter2D::from_state(&state).unwrap();
        for chunk in bytes[cut..].chunks(64 << 10) {
            k.process_chunk(chunk);
        }
        let streamed = k.finalize();

        // Reference: whole-image convolution.
        let reference = filter_image(&slice, width);
        let reference_bytes: Vec<u8> = reference.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(streamed, reference_bytes, "slice {z} mismatch");
    }
    println!(
        "filtered {slices} slices; {checkpoints} mid-slice checkpoint migrations, \
         all results identical to the reference convolution ✓\n"
    );

    // ---- performance plane: where should the filtering run? ----
    println!("archive node serving concurrent smoothing requests (512 MB each):");
    println!(
        "{:>8}  {:>9}  {:>9}  {:>9}",
        "readers", "TS (s)", "AS (s)", "DOSAS (s)"
    );
    for readers in [2usize, 8, 32] {
        let workload = Workload::uniform_active(
            readers,
            1,
            512 << 20,
            "gaussian2d",
            KernelParams::with_width(4096),
        );
        let run = |s: Scheme| Driver::run(DriverConfig::paper(s), &workload).makespan_secs;
        println!(
            "{:>8}  {:>9.1}  {:>9.1}  {:>9.1}",
            readers,
            run(Scheme::Traditional),
            run(Scheme::ActiveStorage),
            run(Scheme::dosas_default()),
        );
    }
    println!(
        "\nWith few readers the archive's storage node smooths in place and\n\
         ships only filtered digests; under load DOSAS ships raw slices to\n\
         the viewers' workstations instead of queueing behind a busy CPU."
    );
}
