//! Climate analytics: the multi-application contention scenario of the
//! paper's Figure 1.
//!
//! Several "applications" share one storage node: two active-storage
//! analyses (global statistics over temperature fields, SUM over
//! precipitation) and one traditional application streaming raw data.
//! The Contention Estimator must balance them.
//!
//! Also demonstrates the data plane: the statistics kernel really reduces a
//! synthetic temperature field, rayon-parallel on the "client" side.
//!
//! ```text
//! cargo run --release --example climate_stats
//! ```

use dosas_repro::prelude::*;
use kernels::parallel::par_process;
use kernels::StatsKernel;

/// A synthetic global temperature field (K), f64 grid points.
fn temperature_field(points: usize) -> Vec<u8> {
    (0..points)
        .flat_map(|i| {
            let lat_band = (i % 180) as f64 / 180.0; // 0 pole .. 1 equator-ish
            let season = ((i / 180) % 365) as f64 / 365.0;
            let t = 288.0 - 40.0 * (1.0 - lat_band)
                + 8.0 * (season * std::f64::consts::TAU).sin()
                + ((i * 2654435761) % 1000) as f64 / 500.0
                - 1.0;
            t.to_le_bytes()
        })
        .collect()
}

fn main() {
    // ---- data plane: reduce a real field with the real kernel ----
    let field = temperature_field(2_000_000);
    println!(
        "climate_stats — reducing {} MB of temperature data",
        field.len() >> 20
    );

    // Client-side completion path: rayon over all cores (what the ASC does
    // with a demoted request on a multi-core compute node).
    let k = par_process(StatsKernel::new, &field, 1 << 20);
    let (min, max, mean, var, count) = StatsKernel::decode_result(&k.finalize()).unwrap();
    println!(
        "  {count} points: min {min:.1} K, max {max:.1} K, mean {mean:.2} K, stddev {:.2} K",
        var.sqrt()
    );
    println!(
        "  (40 bytes of answer instead of {} MB of data movement)\n",
        field.len() >> 20
    );

    // ---- performance plane: Figure-1 style application mix ----
    let apps = vec![
        // (op, params, bytes per request, active?, ranks)
        (
            "stats".to_string(),
            KernelParams::default(),
            256 << 20,
            true,
            8,
        ),
        (
            "sum".to_string(),
            KernelParams::default(),
            512 << 20,
            true,
            4,
        ),
        // A traditional visualization app pulling raw fields.
        (
            "stats".to_string(),
            KernelParams::default(),
            256 << 20,
            false,
            6,
        ),
    ];
    println!("three applications sharing one storage node (18 processes total):");
    println!(
        "{:>7}  {:>12}  {:>13}  {:>8}  {:>11}",
        "scheme", "makespan (s)", "mean lat (s)", "demoted", "interrupted"
    );
    for scheme in [
        Scheme::Traditional,
        Scheme::ActiveStorage,
        Scheme::dosas_default(),
    ] {
        let workload = Workload::multi_app(&apps, 1);
        let m = Driver::run(DriverConfig::paper(scheme.clone()), &workload);
        println!(
            "{:>7}  {:>12.1}  {:>13.1}  {:>8}  {:>11}",
            scheme.name(),
            m.makespan_secs,
            m.mean_latency_secs(),
            m.runtime.demoted,
            m.runtime.interrupted
        );
    }
    println!(
        "\nDOSAS serves the cheap reductions (sum/stats) on the storage node —\n\
         they beat the network by an order of magnitude — while keeping the\n\
         queue short enough that the traditional app isn't starved."
    );
}
