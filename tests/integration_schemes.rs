//! Cross-crate integration: the paper's headline results end-to-end through
//! the public facade (`dosas_repro::prelude`).

use dosas_repro::prelude::*;

fn det(scheme: Scheme) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig::deterministic(),
        scheme,
        rates: OpRates::paper(),
        seed: 3,
        data_plane: false,
        trace: false,
        fault_plan: FaultPlan::default(),
        slos: Vec::new(),
        obs: ObsConfig::default(),
        autopsy: false,
    }
}

fn gaussian(n: usize, mb: u64) -> Workload {
    Workload::uniform_active(n, 1, mb << 20, "gaussian2d", KernelParams::with_width(4096))
}

/// Paper Figure 2 / 4: the AS-vs-TS crossover sits between 3 and 4
/// concurrent Gaussian requests per 1-kernel-core storage node.
#[test]
fn crossover_is_between_three_and_four_requests() {
    let mk = |scheme: Scheme, n| Driver::run(det(scheme), &gaussian(n, 128)).makespan_secs;
    assert!(mk(Scheme::ActiveStorage, 3) < mk(Scheme::Traditional, 3));
    assert!(mk(Scheme::Traditional, 4) < mk(Scheme::ActiveStorage, 4));
}

/// Paper Figures 7–10: DOSAS never loses to either pure scheme by more than
/// scheduling noise, at any scale, for any request size.
#[test]
fn dosas_tracks_lower_envelope_across_grid() {
    for mb in [128u64, 512] {
        for n in [1usize, 4, 16, 64] {
            let ts = Driver::run(det(Scheme::Traditional), &gaussian(n, mb)).makespan_secs;
            let as_ = Driver::run(det(Scheme::ActiveStorage), &gaussian(n, mb)).makespan_secs;
            let ds = Driver::run(det(Scheme::dosas_default()), &gaussian(n, mb)).makespan_secs;
            let best = ts.min(as_);
            assert!(
                ds <= best * 1.05,
                "mb={mb} n={n}: DOSAS {ds:.2} vs best {best:.2}"
            );
        }
    }
}

/// Paper's headline improvement claims: ~40% over TS at small scale,
/// ~20% over AS at large scale (we assert the direction and a conservative
/// floor, not the exact percentage).
#[test]
fn dosas_improvement_magnitudes() {
    let small = 2usize;
    let ts = Driver::run(det(Scheme::Traditional), &gaussian(small, 128)).makespan_secs;
    let ds = Driver::run(det(Scheme::dosas_default()), &gaussian(small, 128)).makespan_secs;
    let gain_vs_ts = (ts - ds) / ts;
    assert!(
        gain_vs_ts > 0.10,
        "small scale: expected a substantial gain over TS, got {:.0}%",
        gain_vs_ts * 100.0
    );

    let large = 32usize;
    let as_ = Driver::run(det(Scheme::ActiveStorage), &gaussian(large, 128)).makespan_secs;
    let ds = Driver::run(det(Scheme::dosas_default()), &gaussian(large, 128)).makespan_secs;
    let gain_vs_as = (as_ - ds) / as_;
    assert!(
        gain_vs_as > 0.10,
        "large scale: expected a substantial gain over AS, got {:.0}%",
        gain_vs_as * 100.0
    );
}

/// Paper Figure 6: low-complexity kernels (SUM at 860 MB/s/core vs a
/// 118 MB/s network) never benefit from demotion.
#[test]
fn sum_stays_on_storage_at_every_scale() {
    for n in [1usize, 16, 64] {
        let w = Workload::uniform_active(n, 1, 128 << 20, "sum", KernelParams::default());
        let m = Driver::run(det(Scheme::dosas_default()), &w);
        assert_eq!(m.runtime.demoted, 0, "n={n}");
        assert_eq!(m.runtime.completed_active, n as u64, "n={n}");
    }
}

/// Bandwidth metric (Figures 11–12): TS approaches the wire limit at high
/// concurrency, AS is pinned at the kernel rate, DOSAS takes the max.
#[test]
fn bandwidth_envelope() {
    let w = gaussian(64, 256);
    let ts = Driver::run(det(Scheme::Traditional), &w).bandwidth_mb_per_s();
    let as_ = Driver::run(det(Scheme::ActiveStorage), &w).bandwidth_mb_per_s();
    let ds = Driver::run(det(Scheme::dosas_default()), &w).bandwidth_mb_per_s();
    assert!(ts > 100.0, "TS should approach the 118 MB/s wire: {ts:.1}");
    assert!((as_ - 80.0).abs() < 5.0, "AS pinned near 80 MB/s: {as_:.1}");
    assert!(
        ds >= ts.max(as_) * 0.95,
        "DOSAS {ds:.1} vs max {:.1}",
        ts.max(as_)
    );
}

/// The enhanced-call protocol (Table I) is exercised end to end: results
/// delivered with completed=1 from storage and completed=0 finished by the
/// ASC are byte-identical.
#[test]
fn protocol_equivalence_with_real_data() {
    let bytes = 256 * 1024u64;
    let content = kernels::calibrate::synthetic_f64_stream(bytes as usize);
    let run = |scheme: Scheme| {
        let mut w = Workload::uniform_active(4, 1, bytes, "stats", KernelParams::default());
        w.files[0].content = Some(content.clone());
        let mut cfg = det(scheme);
        cfg.data_plane = true;
        Driver::run(cfg, &w)
    };
    let ts = run(Scheme::Traditional);
    let as_ = run(Scheme::ActiveStorage);
    let ds = run(Scheme::dosas_default());
    for app in 0..4u64 {
        assert_eq!(ts.results[&app], as_.results[&app]);
        assert_eq!(ts.results[&app], ds.results[&app]);
    }
    // The stats digest is the real reduction of the real bytes.
    let (min, max, ..) = kernels::StatsKernel::decode_result(&ts.results[&0]).unwrap();
    assert!(min <= max);
}

/// Different request sizes in one queue: the heterogeneous solvers decide
/// per request and the run completes with every request accounted.
#[test]
fn heterogeneous_sizes_complete() {
    use mpiio::program::RankProgram;
    let mut w =
        Workload::uniform_active(1, 1, 64 << 20, "gaussian2d", KernelParams::with_width(4096));
    for mb in [128u64, 256, 512] {
        w.programs.push(RankProgram::single_read_ex(
            "/data/server0.dat",
            (mb << 20).min(64 << 20), // stay within the file
            "gaussian2d",
            KernelParams::with_width(4096),
        ));
    }
    let m = Driver::run(det(Scheme::dosas_default()), &w);
    assert_eq!(m.records.len(), 4);
    let done =
        m.runtime.completed_active + m.runtime.completed_normal + m.runtime.completed_migrated;
    assert_eq!(done, 4);
}
