//! Determinism of the sharded parallel executor across thread counts.
//!
//! The contract (DESIGN.md §8): `ExecMode::Parallel { threads }` produces
//! *bit-identical* `RunMetrics` for every thread count, and those metrics are
//! bit-identical to `ExecMode::Serial`. Parallelism here only changes *who*
//! computes each staged tick harvest, never *what* is computed or in what
//! order results are applied — so a seed fixes the run exactly, regardless
//! of how many workers the rayon pool holds.
//!
//! The scenario deliberately stacks the order-sensitive machinery: DOSAS
//! demote/interrupt decisions, per-flow bandwidth jitter, CPU jitter RNG
//! draws, and a mid-run storage-node CPU fault window.

use dosas_repro::prelude::*;

const MIB: u64 = 1024 * 1024;

/// Discfarm's storage node (8 compute nodes come first).
const STORAGE_NODE: usize = 8;

fn contended_cfg(scheme: Scheme, seed: u64) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig::discfarm(),
        scheme,
        rates: OpRates::paper(),
        seed,
        data_plane: false,
        trace: false,
        fault_plan: FaultPlan::new().inject(
            STORAGE_NODE,
            FaultKind::CpuSlowdown { factor: 0.4 },
            SimTime::from_secs_f64(1.0),
            SimSpan::from_secs_f64(2.0),
        ),
        slos: Vec::new(),
        obs: ObsConfig::default(),
        autopsy: false,
    }
}

fn contended_workload() -> Workload {
    Workload::uniform_active(6, 1, 48 * MIB, "gaussian2d", KernelParams::with_width(1024))
}

fn run_json(scheme: Scheme, seed: u64, mode: ExecMode) -> String {
    let metrics = Driver::run_with(contended_cfg(scheme, seed), &contended_workload(), mode);
    serde_json::to_string_pretty(&metrics).expect("RunMetrics serializes")
}

/// Same seed, thread counts 1 / 2 / 8: every run serializes identically to
/// the serial reference.
#[test]
fn parallel_runs_are_bit_identical_across_thread_counts() {
    for scheme in [Scheme::dosas_default(), Scheme::ActiveStorage] {
        let serial = run_json(scheme.clone(), 7, ExecMode::Serial);
        for threads in [1usize, 2, 8] {
            let parallel = run_json(scheme.clone(), 7, ExecMode::Parallel { threads });
            assert_eq!(
                serial, parallel,
                "scheme {scheme:?}: {threads}-thread run diverged from serial"
            );
        }
    }
}

/// Different seeds still produce different runs under the parallel executor
/// (the equality above is not vacuous: jitter is on and actually consumed).
#[test]
fn parallel_runs_distinguish_seeds() {
    let a = run_json(
        Scheme::dosas_default(),
        7,
        ExecMode::Parallel { threads: 2 },
    );
    let b = run_json(
        Scheme::dosas_default(),
        8,
        ExecMode::Parallel { threads: 2 },
    );
    assert_ne!(a, b, "seeds 7 and 8 produced identical metrics");
}

/// PR 8 regression — lane-spill pathology. The paper workload used to push
/// 1601 of its ~2038 events through the per-lane spill heaps (BENCH v5);
/// with the lookahead window keeping lanes short and the bounded
/// sorted-insert absorbing near-order pushes, spills must stay eliminated.
/// The window must also genuinely batch: every dispatched event flows
/// through a window, and refills are amortised over many timestamps.
#[test]
fn paper_workload_has_no_lane_spills_and_windows_its_events() {
    let cfg = DriverConfig::paper(Scheme::dosas_default());
    let workload = Workload::uniform_active(
        64,
        1,
        256 * MIB,
        "gaussian2d",
        KernelParams::with_width(1024),
    );
    let (metrics, profile) =
        Driver::run_profiled(cfg, &workload, ExecMode::Parallel { threads: 2 });
    assert!(
        metrics.events > 1_000,
        "paper point should stay non-trivial"
    );
    assert_eq!(
        profile.queue_spilled, 0,
        "lane spills must stay eliminated (was 1601 pre-window)"
    );
    assert!(profile.lookahead.windows > 0, "window machinery engaged");
    assert!(
        profile.lookahead.drains > 0,
        "chain-mode direct drains engaged"
    );
    assert!(
        profile.lookahead.window_events + profile.lookahead.drained_events >= profile.batch_events,
        "every dispatched event is either windowed or chain-drained"
    );
    assert!(
        profile.lookahead.windows < profile.batches,
        "refills ({}) must be amortised over timestamps ({})",
        profile.lookahead.windows,
        profile.batches,
    );
}

/// Scheduled-vs-dispatched accounting: a run-to-drain simulation dispatches
/// every event it ever scheduled except the stale `NetTick`s the incremental
/// fabric revoked before they could fire, in both modes.
#[test]
fn run_to_drain_dispatches_every_scheduled_event() {
    for mode in [ExecMode::Serial, ExecMode::Parallel { threads: 2 }] {
        let metrics = Driver::run_with(
            contended_cfg(Scheme::dosas_default(), 3),
            &contended_workload(),
            mode,
        );
        assert_eq!(
            metrics.events_scheduled,
            metrics.events + metrics.events_cancelled,
            "drained run should leave no pending events"
        );
        assert!(metrics.events > 0);
        assert!(
            metrics.events_cancelled > 0,
            "a contended workload must supersede at least one NetTick"
        );
    }
}

/// Randomized bit-identity: for arbitrary small workloads (cluster size,
/// rank fan-out, request size, scheme, optional mid-run fault) the windowed
/// parallel executor at 1 / 2 / 8 threads serializes `RunMetrics` to exactly
/// the bytes the serial reference produces.
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn random_cfg(scheme: Scheme, seed: u64, storage: usize, fault: bool) -> DriverConfig {
        let mut cfg = contended_cfg(scheme, seed);
        cfg.cluster = ClusterConfig {
            storage_nodes: storage,
            ..ClusterConfig::discfarm()
        };
        if !fault {
            cfg.fault_plan = FaultPlan::new();
        }
        cfg
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn random_workloads_are_bit_identical_across_modes(
            seed in 0u64..1_000,
            per_server in 1usize..4,
            storage in 1usize..3,
            mib in 1u64..8,
            scheme_ix in 0usize..3,
            fault in (0u8..2).prop_map(|b| b == 1),
        ) {
            let scheme = match scheme_ix {
                0 => Scheme::Traditional,
                1 => Scheme::ActiveStorage,
                _ => Scheme::dosas_default(),
            };
            let workload = Workload::uniform_active(
                per_server,
                storage,
                mib * MIB,
                "gaussian2d",
                KernelParams::with_width(1024),
            );
            let serial = serde_json::to_string_pretty(&Driver::run_with(
                random_cfg(scheme.clone(), seed, storage, fault),
                &workload,
                ExecMode::Serial,
            ))
            .expect("RunMetrics serializes");
            for threads in [1usize, 2, 8] {
                let parallel = serde_json::to_string_pretty(&Driver::run_with(
                    random_cfg(scheme.clone(), seed, storage, fault),
                    &workload,
                    ExecMode::Parallel { threads },
                ))
                .expect("RunMetrics serializes");
                prop_assert_eq!(
                    &serial, &parallel,
                    "scheme {:?} seed {} threads {}: diverged from serial",
                    scheme, seed, threads
                );
            }
        }
    }
}
