//! Deterministic failure-scenario harness for the CE/Runtime loop.
//!
//! Every scenario is a named, seed-driven [`FaultPlan`] injected into an
//! otherwise deterministic run. The invariants under test: the simulation
//! never wedges (all requests complete, all ranks finish), the CE degrades
//! gracefully (probe loss/staleness drives it into the static all-Active
//! fallback instead of acting on bad state), and every run is exactly
//! reproducible — same seed, same plan, same event trace.

use dosas_repro::prelude::*;
use dosas_repro::simkit::RngFactory;

const MIB: u64 = 1024 * 1024;

/// The storage node's plain node id on the default single-storage testbed
/// (storage ids follow the 8 compute nodes).
const STORAGE_NODE: usize = 8;

fn det(scheme: Scheme, fault_plan: FaultPlan) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig::deterministic(),
        scheme,
        rates: OpRates::paper(),
        seed: 7,
        data_plane: false,
        trace: false,
        fault_plan,
        slos: Vec::new(),
        obs: ObsConfig::default(),
        autopsy: false,
    }
}

fn gaussians(n: usize) -> Workload {
    Workload::uniform_active(
        n,
        1,
        128 * MIB,
        "gaussian2d",
        KernelParams::with_width(1024),
    )
}

/// Two-wave workload that reliably triggers mid-kernel interruptions
/// (wave 2 lands at 0.5 s while wave 1's kernels run).
fn two_wave_gaussians() -> Workload {
    Workload::two_waves(
        4,
        1,
        128 * MIB,
        "gaussian2d",
        KernelParams::with_width(1024),
        SimSpan::from_millis(500),
    )
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn span(s: f64) -> SimSpan {
    SimSpan::from_secs_f64(s)
}

/// Run the scenario twice and insist on a bit-identical outcome: the fault
/// layer must not introduce any nondeterminism.
fn run_deterministic(cfg: &DriverConfig, w: &Workload) -> RunMetrics {
    let a = Driver::run(cfg.clone(), w);
    let b = Driver::run(cfg.clone(), w);
    assert_eq!(
        a.makespan_secs.to_bits(),
        b.makespan_secs.to_bits(),
        "same seed + same plan must give the same makespan"
    );
    assert_eq!(a.events, b.events, "event trace length diverged");
    assert_eq!(a.runtime, b.runtime, "runtime counters diverged");
    assert_eq!(a.ce, b.ce, "CE stats diverged");
    a
}

fn assert_all_complete(m: &RunMetrics, n: usize) {
    assert_eq!(m.records.len(), n, "every request must complete");
    assert!(m.makespan_secs > 0.0);
}

// ---------------------------------------------------------------------------
// Scenario 1: probe blackout
// ---------------------------------------------------------------------------

/// Every CE probe of the storage node is lost for the whole run. After the
/// retry budget the CE enters fallback and applies no policies; requests are
/// served as requested (static all-Active), and the run still finishes
/// within 2x of the fault-free DOSAS makespan.
#[test]
fn probe_blackout_falls_back_to_static_policy() {
    let w = gaussians(6);
    let clean = run_deterministic(&det(Scheme::dosas_default(), FaultPlan::new()), &w);
    assert!(
        clean.runtime.demoted > 0,
        "baseline sanity: fault-free DOSAS demotes under this load"
    );

    let plan = FaultPlan::new().inject(
        STORAGE_NODE,
        FaultKind::ProbeLoss,
        SimTime::ZERO,
        span(10_000.0),
    );
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 6);
    assert!(m.ce.probes_lost > 0, "probes were injected as lost");
    assert!(m.ce.fallback_entries >= 1, "CE must enter fallback");
    assert_eq!(m.ce.recoveries, 0, "probes never come back");
    assert_eq!(
        m.runtime.demoted + m.runtime.interrupted,
        0,
        "no policy may be applied while blind"
    );
    assert!(
        m.makespan_secs <= 2.0 * clean.makespan_secs,
        "degraded run too slow: {} vs fault-free {}",
        m.makespan_secs,
        clean.makespan_secs
    );
}

// ---------------------------------------------------------------------------
// Scenario 2: mid-kernel storage-node slowdown
// ---------------------------------------------------------------------------

/// The storage node's CPU halves while wave-1 kernels are mid-flight. The
/// CE keeps probing (probes are fine), kernels just run slower; everything
/// still completes, no faster than the fault-free run.
#[test]
fn mid_kernel_node_slowdown_completes_all() {
    let w = two_wave_gaussians();
    let clean = run_deterministic(&det(Scheme::dosas_default(), FaultPlan::new()), &w);

    let plan = FaultPlan::new().inject(
        STORAGE_NODE,
        FaultKind::CpuSlowdown { factor: 0.5 },
        secs(0.6),
        span(1.0),
    );
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 4);
    assert_eq!(m.ce.probes_lost, 0);
    assert!(
        m.makespan_secs >= clean.makespan_secs,
        "a slowdown cannot speed the run up: {} vs {}",
        m.makespan_secs,
        clean.makespan_secs
    );
}

// ---------------------------------------------------------------------------
// Scenario 3: bandwidth dip during migration
// ---------------------------------------------------------------------------

/// The storage node's NIC drops to a quarter bandwidth exactly while
/// interrupted kernels ship their residue + checkpoint. Transfers stretch
/// but deliver; the run completes with migrations intact.
#[test]
fn bandwidth_dip_during_migration_completes_all() {
    let w = two_wave_gaussians();
    let clean = run_deterministic(&det(Scheme::dosas_default(), FaultPlan::new()), &w);
    assert!(
        clean.runtime.interrupted > 0,
        "baseline sanity: the two-wave load interrupts running kernels"
    );

    let plan = FaultPlan::new().inject(
        STORAGE_NODE,
        FaultKind::NetBandwidthDip { factor: 0.25 },
        secs(0.7),
        span(2.0),
    );
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 4);
    assert!(m.runtime.interrupted > 0, "interruptions still happen");
    assert!(
        m.makespan_secs >= clean.makespan_secs,
        "a bandwidth dip cannot speed the run up"
    );
}

// ---------------------------------------------------------------------------
// Scenario 4: checkpoint shipment failure
// ---------------------------------------------------------------------------

/// Every checkpoint shipment leaving the storage node fails after consuming
/// its transfer time. Each failed request re-queues at the disk as a plain
/// normal read (progress discarded) and terminates on the second attempt —
/// the re-ship carries no checkpoint, so it cannot fail again.
#[test]
fn checkpoint_ship_failure_requeues_and_completes() {
    let w = two_wave_gaussians();
    let plan = FaultPlan::new().inject(
        STORAGE_NODE,
        FaultKind::CheckpointShipFailure,
        SimTime::ZERO,
        span(10_000.0),
    );
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 4);
    assert!(m.runtime.interrupted > 0, "interruptions produce shipments");
    assert!(
        m.runtime.checkpoint_failures >= 1,
        "doomed shipments must be recorded: {:?}",
        m.runtime
    );
    assert_eq!(
        m.runtime.checkpoint_failures, m.runtime.interrupted,
        "every migrated shipment is doomed exactly once under a full-run fault"
    );
}

// ---------------------------------------------------------------------------
// Scenario 5: disk stall
// ---------------------------------------------------------------------------

/// The storage node's disk serves nothing for a full second right as the
/// requests queue up. Queued reads wait the stall out and the run completes.
#[test]
fn disk_stall_delays_but_completes() {
    let w = gaussians(4);
    let clean = run_deterministic(&det(Scheme::dosas_default(), FaultPlan::new()), &w);

    let plan = FaultPlan::new().inject(STORAGE_NODE, FaultKind::DiskStall, secs(0.05), span(1.0));
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 4);
    assert!(
        m.makespan_secs >= clean.makespan_secs,
        "a stalled disk cannot speed the run up"
    );
}

// ---------------------------------------------------------------------------
// Scenario 6: delayed probes past the staleness bound
// ---------------------------------------------------------------------------

/// Probe replies arrive 400 ms late — beyond the 300 ms staleness bound —
/// so every generated policy is discarded on arrival. The CE behaves as if
/// blind: no demotions, eventual fallback, and the run still completes.
#[test]
fn stale_policies_are_discarded() {
    let w = gaussians(6);
    let plan = FaultPlan::new().inject(
        STORAGE_NODE,
        FaultKind::ProbeDelay {
            delay: SimSpan::from_millis(400),
        },
        SimTime::ZERO,
        span(10_000.0),
    );
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 6);
    assert!(m.ce.stale_discards > 0, "late policies must be discarded");
    assert_eq!(
        m.runtime.demoted + m.runtime.interrupted,
        0,
        "stale policies must never be applied"
    );
}

/// Probe replies arrive late but *within* the staleness bound: policies are
/// applied on arrival and scheduling proceeds (delayed, not blinded).
#[test]
fn fresh_delayed_policies_still_apply() {
    let w = gaussians(6);
    let plan = FaultPlan::new().inject(
        STORAGE_NODE,
        FaultKind::ProbeDelay {
            delay: SimSpan::from_millis(100),
        },
        SimTime::ZERO,
        span(10_000.0),
    );
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 6);
    assert_eq!(m.ce.stale_discards, 0, "100 ms < 300 ms bound: all fresh");
    assert!(
        m.runtime.demoted > 0,
        "delayed-but-fresh policies still reach the runtime: {:?}",
        m.runtime
    );
}

// ---------------------------------------------------------------------------
// Scenario 7: combined storm
// ---------------------------------------------------------------------------

/// A seeded random storm across every node — slowdowns, stalls, dips, probe
/// loss/delay, checkpoint failures all at once. The only promises: nothing
/// wedges, and the whole mess replays bit-identically from its seed.
#[test]
fn combined_storm_is_deterministic_and_completes() {
    let cluster = ClusterConfig::deterministic();
    let nodes: Vec<usize> = (0..cluster.total_nodes()).collect();
    let mut rng = RngFactory::new(2012).stream("storm");
    let plan = FaultPlan::random_storm(&mut rng, &nodes, SimTime::ZERO, span(6.0), 2);
    assert_eq!(plan.events().len(), nodes.len() * 2);

    let w = two_wave_gaussians();
    let m = run_deterministic(&det(Scheme::dosas_default(), plan.clone()), &w);
    assert_all_complete(&m, 4);

    // The storm itself is reproducible from its seed.
    let mut rng2 = RngFactory::new(2012).stream("storm");
    let replay = FaultPlan::random_storm(&mut rng2, &nodes, SimTime::ZERO, span(6.0), 2);
    assert_eq!(plan, replay, "same seed must rebuild the same storm");
}

// ---------------------------------------------------------------------------
// Cross-cutting: faults leave the fault-free path untouched
// ---------------------------------------------------------------------------

/// An empty plan must be byte-for-byte the run we had before the fault layer
/// existed, for every scheme (guards against the wiring perturbing the
/// fault-free event order).
#[test]
fn empty_plan_matches_across_schemes() {
    let w = gaussians(3);
    for scheme in [
        Scheme::Traditional,
        Scheme::ActiveStorage,
        Scheme::dosas_default(),
    ] {
        let m = run_deterministic(&det(scheme, FaultPlan::new()), &w);
        assert_all_complete(&m, 3);
        assert_eq!(m.ce.probes_lost, 0);
        assert_eq!(m.runtime.checkpoint_failures, 0);
    }
}

/// Faults confined to a window fully restore capacity afterwards: a fault
/// that ends before the workload starts changes nothing.
#[test]
fn expired_faults_restore_exact_capacity() {
    let w = gaussians(4);
    // Workload arrivals begin at t=0, but kernels run past 0.2 s; a fault
    // over [0, 1ms) perturbs nothing measurable in the deterministic setup
    // except a handful of extra Fault events.
    let plan = FaultPlan::new().inject(
        STORAGE_NODE,
        FaultKind::NetBandwidthDip { factor: 0.5 },
        secs(5_000.0),
        span(1.0),
    );
    let clean = run_deterministic(&det(Scheme::dosas_default(), FaultPlan::new()), &w);
    let faulted = run_deterministic(&det(Scheme::dosas_default(), plan), &w);
    assert_eq!(
        clean.makespan_secs.to_bits(),
        faulted.makespan_secs.to_bits(),
        "a fault window after the run ends must not change the outcome"
    );
    assert_eq!(clean.runtime, faulted.runtime);
}

// ---------------------------------------------------------------------------
// Scenario 8: full stall (factor 0)
// ---------------------------------------------------------------------------

/// A zero-factor window stalls the storage node's CPU *and* NIC outright.
/// While every task/flow runs at rate 0 the resources must report no
/// upcoming completion (a naive `remaining / rate` would be infinite and
/// panic inside `SimSpan::from_secs_f64`); when the window closes, capacity
/// is restored and every request still completes.
#[test]
fn zero_rate_stall_window_completes_after_recovery() {
    let w = gaussians(4);
    let plan = FaultPlan::new()
        .inject(
            STORAGE_NODE,
            FaultKind::CpuSlowdown { factor: 0.0 },
            secs(0.2),
            span(1.0),
        )
        .inject(
            STORAGE_NODE,
            FaultKind::NetBandwidthDip { factor: 0.0 },
            secs(0.2),
            span(1.0),
        );
    let clean = run_deterministic(&det(Scheme::dosas_default(), FaultPlan::new()), &w);
    let m = run_deterministic(&det(Scheme::dosas_default(), plan), &w);

    assert_all_complete(&m, 4);
    assert!(
        m.makespan_secs > clean.makespan_secs,
        "a 1 s full stall must cost wall-clock time: {} vs {}",
        m.makespan_secs,
        clean.makespan_secs
    );
    // The stall also exercises the no-completion NetTick cancellation path
    // in both executors; the run must stay bit-identical across modes.
    let p = Driver::run_with(
        det(Scheme::dosas_default(), {
            FaultPlan::new()
                .inject(
                    STORAGE_NODE,
                    FaultKind::CpuSlowdown { factor: 0.0 },
                    secs(0.2),
                    span(1.0),
                )
                .inject(
                    STORAGE_NODE,
                    FaultKind::NetBandwidthDip { factor: 0.0 },
                    secs(0.2),
                    span(1.0),
                )
        }),
        &w,
        ExecMode::Parallel { threads: 2 },
    );
    assert_eq!(m.makespan_secs.to_bits(), p.makespan_secs.to_bits());
    assert_eq!(m.events, p.events);
    assert_eq!(m.events_cancelled, p.events_cancelled);
}

// ---------------------------------------------------------------------------
// Scenario 9: node leave mid-transfer (elastic membership)
// ---------------------------------------------------------------------------

/// The storage node leaves the pool outright while transfers are in
/// flight — CPU to zero, disk stalled, probes lost, and its fabric links
/// offline — then rejoins a second later. Parked flows must not strand in
/// the fabric's epoch-tagged completion heap: every request completes
/// after the rejoin, the CE recovers from its probe blackout, and the
/// whole membership cycle replays bit-identically under the parallel
/// executor.
#[test]
fn node_leave_mid_transfer_completes_after_rejoin() {
    let w = gaussians(4);
    let clean = run_deterministic(&det(Scheme::dosas_default(), FaultPlan::new()), &w);

    let plan = || FaultPlan::new().node_leave(STORAGE_NODE, secs(0.3), span(1.0));
    let m = run_deterministic(&det(Scheme::dosas_default(), plan()), &w);

    assert_all_complete(&m, 4);
    assert!(m.ce.probes_lost > 0, "probes of an absent node are lost");
    assert!(
        m.ce.recoveries >= 1,
        "the CE must recover once the node rejoins: {:?}",
        m.ce
    );
    assert!(
        m.makespan_secs > clean.makespan_secs,
        "a 1 s absence must cost wall-clock time: {} vs {}",
        m.makespan_secs,
        clean.makespan_secs
    );

    // The leave/rejoin cycle drives the no-completion NetTick path (every
    // flow parked at rate zero) and the membership dirty-link path in both
    // executors; the outcomes must stay bit-identical.
    let p = Driver::run_with(
        det(Scheme::dosas_default(), plan()),
        &w,
        ExecMode::Parallel { threads: 2 },
    );
    assert_eq!(m.makespan_secs.to_bits(), p.makespan_secs.to_bits());
    assert_eq!(m.events, p.events);
    assert_eq!(m.runtime, p.runtime);
    assert_eq!(m.ce, p.ce);
}
