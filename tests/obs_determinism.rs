//! Observability determinism: the obs layer is part of the simulation's
//! deterministic surface.
//!
//! Contracts under test (DESIGN.md §9):
//!
//! * the merged `timeline.jsonl` document (samples + structured events) is
//!   **byte-identical** between `ExecMode::Serial` and
//!   `ExecMode::Parallel { threads }` for any thread count, on a faulted,
//!   contended workload — sampling rides the event stream (a global-lane
//!   `Sample` event), so exec mode must not leak into it;
//! * the Prometheus snapshot validates against the text-exposition format
//!   and is likewise mode-independent;
//! * every timeline line round-trips through serde unchanged;
//! * the sampled cumulative queue-depth integrals reproduce
//!   `RunMetrics::mean_queue_depth` to within 1e-9 (same float operations
//!   as the driver's own time-weighted accumulator).

use dosas_repro::prelude::*;

const MIB: u64 = 1024 * 1024;

/// Discfarm's storage node (8 compute nodes come first).
const STORAGE_NODE: usize = 8;

/// Contended + faulted: the same order-sensitive scenario the parallel
/// determinism suite uses, now with observability enabled.
fn obs_cfg(scheme: Scheme) -> DriverConfig {
    let mut cfg = DriverConfig {
        cluster: ClusterConfig::discfarm(),
        scheme,
        rates: OpRates::paper(),
        seed: 7,
        data_plane: false,
        trace: false,
        fault_plan: FaultPlan::new().inject(
            STORAGE_NODE,
            FaultKind::CpuSlowdown { factor: 0.4 },
            SimTime::from_secs_f64(1.0),
            SimSpan::from_secs_f64(2.0),
        ),
        slos: Vec::new(),
        obs: ObsConfig::default(),
        autopsy: false,
    };
    cfg.obs = ObsConfig::enabled();
    cfg
}

fn workload() -> Workload {
    Workload::uniform_active(6, 1, 48 * MIB, "gaussian2d", KernelParams::with_width(1024))
}

fn run(scheme: Scheme, mode: ExecMode) -> RunMetrics {
    Driver::run_with(obs_cfg(scheme), &workload(), mode)
}

#[test]
fn timeline_is_byte_identical_across_exec_modes() {
    for scheme in [Scheme::dosas_default(), Scheme::ActiveStorage] {
        let serial = run(scheme.clone(), ExecMode::Serial);
        let reference = serial.obs.as_ref().expect("obs enabled").timeline_jsonl();
        assert!(
            reference.lines().count() > 10,
            "scenario must actually produce a timeline"
        );
        for threads in [2usize, 8] {
            let parallel = run(scheme.clone(), ExecMode::Parallel { threads });
            let candidate = parallel.obs.as_ref().expect("obs enabled").timeline_jsonl();
            assert_eq!(
                reference, candidate,
                "scheme {scheme:?}: {threads}-thread timeline diverged from serial"
            );
        }
    }
}

#[test]
fn prometheus_snapshot_validates_and_is_mode_independent() {
    let serial = run(Scheme::dosas_default(), ExecMode::Serial);
    let prom = serial.obs.as_ref().unwrap().to_prometheus();
    let samples = obs::validate_prometheus(&prom).expect("snapshot parses");
    assert!(
        samples > 20,
        "expected a real metric surface, got {samples}"
    );
    let parallel = run(Scheme::dosas_default(), ExecMode::Parallel { threads: 2 });
    assert_eq!(prom, parallel.obs.as_ref().unwrap().to_prometheus());
}

#[test]
fn timeline_round_trips_through_serde() {
    let m = run(Scheme::dosas_default(), ExecMode::Serial);
    let jsonl = m.obs.as_ref().unwrap().timeline_jsonl();
    for (i, line) in jsonl.lines().enumerate() {
        let rec: TimelineRecord =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        let again = serde_json::to_string(&rec).expect("record serializes");
        assert_eq!(line, again, "line {} did not round-trip", i + 1);
    }
}

#[test]
fn sampled_queue_depth_integrals_reproduce_mean_queue_depth() {
    let m = run(Scheme::dosas_default(), ExecMode::Serial);
    let report = m.obs.as_ref().unwrap();
    // The final sample is taken at the run's end time inside metric
    // collection, so its cumulative integrals cover the whole run.
    let last = report.samples.last().expect("run produced samples");
    let end_secs = last.t.as_secs_f64();
    assert!(end_secs > 0.0);
    let mean_from_samples = last
        .servers
        .iter()
        .map(|s| s.queue_depth_integral / end_secs)
        .sum::<f64>()
        / last.servers.len() as f64;
    assert!(
        (mean_from_samples - m.mean_queue_depth).abs() < 1e-9,
        "sampled {mean_from_samples} vs driver {} (diff {})",
        m.mean_queue_depth,
        (mean_from_samples - m.mean_queue_depth).abs()
    );
}

/// Satellite regression: a run with no I/O at all must report zeroed — not
/// NaN — bandwidth and queue-depth aggregates.
#[test]
fn empty_workload_yields_finite_metrics() {
    let w = Workload {
        files: vec![],
        programs: vec![],
        tenants: vec![],
    };
    for scheme in [Scheme::Traditional, Scheme::dosas_default()] {
        let m = Driver::run(obs_cfg(scheme), &w);
        assert_eq!(m.achieved_bandwidth, 0.0, "no bytes, no bandwidth");
        assert!(m.mean_queue_depth.is_finite());
        assert!(m.makespan_secs.is_finite());
    }
}
