//! Cross-crate integration: the substrate stack (simkit → cluster → pfs →
//! mpiio) composed directly, without the DOSAS driver.

use cluster::{ClusterConfig, ClusterState, NodeId};
use mpiio::Communicator;
use pfs::{MetadataServer, ReadPlan, ReadTracker, StripeLayout};
use simkit::{RngFactory, Scheduler, SimSpan, SimTime, Simulation, World};

/// A hand-rolled mini-world: one client reads a striped file by driving the
/// fabric and disks directly. Validates that the substrate crates compose
/// without the dosas driver.
struct MiniWorld {
    cluster: ClusterState,
    pending_flows: usize,
    done_at: Option<SimTime>,
}

#[derive(Debug)]
enum Ev {
    DiskTick { ordinal: usize, epoch: u64 },
    NetTick { epoch: u64 },
}

impl World for MiniWorld {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::DiskTick { ordinal, epoch } => {
                if self.cluster.disks[ordinal].epoch() != epoch {
                    return;
                }
                for _ in self.cluster.disks[ordinal].take_completed(now) {
                    // Disk done: ship 1 MiB to the client (node 0).
                    let src = self.cluster.storage_node(ordinal);
                    self.cluster
                        .fabric
                        .start_flow(now, src, NodeId(0), 1024.0 * 1024.0);
                    self.pending_flows += 1;
                    if let Some(t) = self.cluster.fabric.next_completion() {
                        sched.at(
                            t,
                            Ev::NetTick {
                                epoch: self.cluster.fabric.epoch(),
                            },
                        );
                    }
                }
                if let Some(t) = self.cluster.disks[ordinal].next_event() {
                    sched.at(
                        t,
                        Ev::DiskTick {
                            ordinal,
                            epoch: self.cluster.disks[ordinal].epoch(),
                        },
                    );
                }
            }
            Ev::NetTick { epoch } => {
                if self.cluster.fabric.epoch() != epoch {
                    return;
                }
                let done = self.cluster.fabric.take_completed(now).len();
                self.pending_flows -= done;
                if done > 0 && self.pending_flows == 0 {
                    self.done_at = Some(now);
                }
                if let Some(t) = self.cluster.fabric.next_completion() {
                    sched.at(
                        t,
                        Ev::NetTick {
                            epoch: self.cluster.fabric.epoch(),
                        },
                    );
                }
            }
        }
    }
}

#[test]
fn substrate_composes_without_the_driver() {
    let cfg = ClusterConfig {
        storage_nodes: 2,
        flow_bandwidth_jitter: None,
        cpu_time_jitter: None,
        net_latency: SimSpan::ZERO,
        disk_overhead: SimSpan::ZERO,
        ..Default::default()
    };
    let mut cluster = ClusterState::build(cfg, &RngFactory::new(5));
    // Two disks each read 1 MiB, then both stream to client 0.
    for ordinal in 0..2 {
        cluster.disks[ordinal].submit_read(SimTime::ZERO, 1024.0 * 1024.0);
    }
    let mut sim = Simulation::new(MiniWorld {
        cluster,
        pending_flows: 0,
        done_at: None,
    });
    for ordinal in 0..2 {
        let t = sim.world.cluster.disks[ordinal].next_event().unwrap();
        let epoch = sim.world.cluster.disks[ordinal].epoch();
        sim.scheduler().at(t, Ev::DiskTick { ordinal, epoch });
    }
    sim.run();
    let done = sim.world.done_at.expect("both transfers completed");
    // Disk: 1/1000 s; then two 1 MiB flows share client 0's 118 MiB/s rx
    // link: 2/118 s.
    let expect = 1.0 / 1000.0 + 2.0 / 118.0;
    assert!(
        (done.as_secs_f64() - expect).abs() < 1e-3,
        "got {done}, want {expect}"
    );
}

#[test]
fn metadata_striping_and_read_planning_compose() {
    let mut meta = MetadataServer::new();
    let servers: Vec<NodeId> = vec![NodeId(8), NodeId(9), NodeId(10)];
    let layout = StripeLayout::striped(servers).with_stripe_size(64 * 1024);
    let fh = meta.create("/exp/field.dat", 10 << 20, layout).unwrap();
    let file = meta.stat(fh).unwrap().clone();

    let plan = ReadPlan::new(&file, 100 * 1024, 1 << 20).unwrap();
    assert_eq!(plan.server_count(), 3);
    let mut tracker = ReadTracker::new(&plan);
    let n = plan.extents.len();
    for i in 0..n {
        let complete = tracker.deliver(i);
        assert_eq!(complete, i == n - 1);
    }
}

#[test]
fn communicator_places_ranks_on_cluster_nodes() {
    let cfg = ClusterConfig::default();
    let cluster = ClusterState::build(cfg, &RngFactory::new(1));
    let nodes: Vec<NodeId> = (0..16)
        .map(|i| NodeId(i % cluster.cfg.compute_nodes))
        .collect();
    let comm = Communicator::new(nodes);
    assert_eq!(comm.size(), 16);
    // Binomial bcast covers all ranks in ceil(log2 16) = 4 rounds.
    let plan = comm.bcast_plan(0);
    assert_eq!(plan.iter().map(|m| m.round).max().unwrap() + 1, 4);
    // Every planned message runs between real compute nodes.
    for m in plan {
        assert!(comm.node_of(m.src_rank).0 < cluster.cfg.compute_nodes);
        assert!(comm.node_of(m.dst_rank).0 < cluster.cfg.compute_nodes);
    }
}

#[test]
fn kernels_roundtrip_through_every_layer_of_state() {
    // kernel -> KernelState -> mpiio ResultBuf -> serde -> restore.
    use kernels::{Kernel, KernelRegistry, SumKernel};
    use mpiio::file::ResultBuf;
    use pfs::FileHandle;

    let data: Vec<u8> = (0..1000u64)
        .flat_map(|v| (v as f64).to_le_bytes())
        .collect();
    let mut k = SumKernel::new();
    k.process_chunk(&data[..4096]);
    let rb = ResultBuf::uncompleted(Some(k.checkpoint()), FileHandle(3), 4096);

    let json = serde_json::to_string(&rb).unwrap();
    let rb: ResultBuf = serde_json::from_str(&json).unwrap();

    let registry = KernelRegistry::with_defaults();
    let mut restored = registry.restore(rb.kernel_state().unwrap()).unwrap();
    restored.process_chunk(&data[4096..]);

    let mut whole = SumKernel::new();
    whole.process_chunk(&data);
    assert_eq!(restored.finalize(), whole.finalize());
}
