//! Golden `RunMetrics` snapshots: the behaviour-preservation harness.
//!
//! Every scheme (TS / AS / DOSAS / DOSAS-partial) runs a fixed workload on
//! the paper's jittered testbed across three seeds; the full serialized
//! `RunMetrics` (records, counters, policy log, event count) must match the
//! committed snapshot byte for byte. Any change to event ordering, resource
//! accounting, or RNG stream consumption anywhere in the stack shows up
//! here — which is exactly what lets refactors prove themselves
//! behaviour-preserving (the same determinism discipline as
//! `tests/failure_scenarios.rs`).
//!
//! Regenerating after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_metrics
//! git diff tests/golden/   # review every changed number before committing
//! ```

use dosas_repro::prelude::*;
use std::fs;
use std::path::PathBuf;

const MIB: u64 = 1024 * 1024;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The paper's testbed (jitter on, so seeds genuinely differ), fixed rates.
fn cfg(scheme: Scheme, seed: u64) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig::discfarm(),
        scheme,
        rates: OpRates::paper(),
        seed,
        data_plane: false,
        trace: false,
        fault_plan: FaultPlan::default(),
    }
}

/// Enough concurrent Gaussians to make DOSAS demote/interrupt (the
/// contention regime where the schemes actually diverge).
fn workload() -> Workload {
    Workload::uniform_active(6, 1, 64 * MIB, "gaussian2d", KernelParams::with_width(1024))
}

fn schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("ts", Scheme::Traditional),
        ("as", Scheme::ActiveStorage),
        ("dosas", Scheme::dosas_default()),
        ("dosas-partial", Scheme::dosas_partial()),
    ]
}

#[test]
fn golden_run_metrics_are_bit_identical() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
    }
    for (key, scheme) in schemes() {
        for seed in [1u64, 2, 3] {
            let metrics = Driver::run(cfg(scheme.clone(), seed), &workload());
            let mut json = serde_json::to_string_pretty(&metrics).expect("RunMetrics serializes");
            json.push('\n');
            let path = golden_dir().join(format!("{key}-seed{seed}.json"));
            if update {
                fs::write(&path, &json).expect("write golden snapshot");
                continue;
            }
            let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden snapshot {path:?} ({e}); regenerate with \
                     UPDATE_GOLDEN=1 cargo test --test golden_metrics"
                )
            });
            assert_eq!(
                json, expected,
                "{key} seed {seed}: RunMetrics diverged from {path:?}; if the \
                 change is intentional, regenerate with UPDATE_GOLDEN=1 and \
                 review the diff"
            );
        }
    }
}

/// The snapshots themselves must be reproducible: running a scheme twice
/// with the same seed yields the same serialized metrics.
#[test]
fn golden_runs_are_deterministic() {
    let c = cfg(Scheme::dosas_default(), 2);
    let w = workload();
    let a = serde_json::to_string(&Driver::run(c.clone(), &w)).unwrap();
    let b = serde_json::to_string(&Driver::run(c, &w)).unwrap();
    assert_eq!(a, b);
}
