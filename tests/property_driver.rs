//! Property tests on the end-to-end driver: arbitrary workloads must
//! complete, conserve request accounting, and behave deterministically —
//! under every scheme.

use dosas_repro::prelude::*;
use mpiio::program::RankProgram;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct WorkloadSpec {
    storage_nodes: usize,
    requests: Vec<(u8, u64, u16)>, // (op selector, size MB 1..=64, delay ms)
    scheme_sel: u8,
    seed: u64,
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..=3,
        proptest::collection::vec((0u8..3, 1u64..=64, 0u16..500), 1..=10),
        0u8..4,
        0u64..1000,
    )
        .prop_map(|(storage_nodes, requests, scheme_sel, seed)| WorkloadSpec {
            storage_nodes,
            requests,
            scheme_sel,
            seed,
        })
}

fn op_name(sel: u8) -> &'static str {
    match sel % 3 {
        0 => "sum",
        1 => "gaussian2d",
        _ => "stats",
    }
}

fn params(op: &str) -> KernelParams {
    if op == "gaussian2d" {
        KernelParams::with_width(1024)
    } else {
        KernelParams::default()
    }
}

fn scheme(sel: u8) -> Scheme {
    match sel % 4 {
        0 => Scheme::Traditional,
        1 => Scheme::ActiveStorage,
        2 => Scheme::dosas_default(),
        _ => Scheme::dosas_partial(),
    }
}

fn build(spec: &WorkloadSpec) -> (DriverConfig, Workload) {
    use dosas::workload::{FileSpec, LayoutSpec};
    let files: Vec<FileSpec> = (0..spec.storage_nodes)
        .map(|s| FileSpec {
            path: format!("/f{s}"),
            bytes: 64 << 20,
            layout: LayoutSpec::OneServer(s),
            content: None,
        })
        .collect();
    let programs = spec
        .requests
        .iter()
        .enumerate()
        .map(|(i, &(op_sel, mb, delay_ms))| {
            let op = op_name(op_sel);
            let mut p = RankProgram::single_read_ex(
                &files[i % spec.storage_nodes].path,
                mb << 20,
                op,
                params(op),
            );
            if delay_ms > 0 {
                p.ops.insert(
                    0,
                    Op::Compute {
                        span: SimSpan::from_millis(delay_ms as u64),
                    },
                );
            }
            p
        })
        .collect();
    let workload = Workload {
        files,
        programs,
        tenants: vec![],
    };
    let mut cfg = DriverConfig::paper(scheme(spec.scheme_sel));
    cfg.cluster.storage_nodes = spec.storage_nodes;
    cfg.seed = spec.seed;
    (cfg, workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random workload drains: all requests complete, accounting
    /// balances, the makespan covers every record.
    #[test]
    fn random_workloads_complete_and_balance(spec in arb_spec()) {
        let (cfg, workload) = build(&spec);
        let n = workload.rank_count() as u64;
        let m = Driver::run(cfg, &workload);

        prop_assert_eq!(m.records.len() as u64, n);
        let done = m.runtime.completed_active
            + m.runtime.completed_normal
            + m.runtime.completed_migrated;
        if matches!(scheme(spec.scheme_sel), Scheme::Traditional) {
            // Under TS the enhanced call degrades to a plain read: the
            // active-storage runtime never sees an active request.
            prop_assert_eq!(m.runtime.admitted, 0);
            prop_assert_eq!(done, 0);
        } else {
            prop_assert_eq!(done, n, "every active request ends in exactly one bucket");
            prop_assert_eq!(m.runtime.admitted, n);
        }
        prop_assert!(m.runtime.demoted + m.runtime.interrupted + m.runtime.split
            <= 3 * n, "bounded control actions");

        let makespan = m.makespan_secs;
        prop_assert!(makespan > 0.0);
        for r in &m.records {
            prop_assert!(r.completed_at.as_secs_f64() <= makespan + 1e-9);
            prop_assert!(r.issued_at <= r.completed_at);
        }
        prop_assert!(
            (m.achieved_bandwidth - m.total_requested_bytes / makespan).abs()
                < 1e-6 * m.achieved_bandwidth.max(1.0)
        );
    }

    /// Same spec, same seed ⇒ bit-identical makespan; DOSAS never beats the
    /// physically-required lower bounds.
    #[test]
    fn runs_are_deterministic_and_physical(spec in arb_spec()) {
        let (cfg, workload) = build(&spec);
        let a = Driver::run(cfg.clone(), &workload);
        let b = Driver::run(cfg, &workload);
        prop_assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        prop_assert_eq!(a.events, b.events);

        // Physical floor: no run can finish before the largest single
        // request could possibly be served by an idle system (its disk
        // read alone).
        let max_bytes = spec.requests.iter().map(|&(_, mb, _)| mb << 20).max().unwrap();
        let disk_floor = max_bytes as f64 / (1000.0 * 1024.0 * 1024.0);
        prop_assert!(
            a.makespan_secs >= disk_floor,
            "makespan {} below disk floor {}",
            a.makespan_secs,
            disk_floor
        );
    }
}
