//! Property tests on two-tenant fairness accounting: for arbitrary
//! two-tenant mixes, per-tenant bandwidth shares must partition the run's
//! aggregate bandwidth exactly (within 1e-9 relative), and no tenant may
//! be credited more than it demanded.

use dosas_repro::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct MixSpec {
    /// Per tenant: (op selector, size MB 1..=32, ranks 1..=4).
    tenants: [(u8, u64, usize); 2],
    storage_nodes: usize,
    seed: u64,
}

fn arb_spec() -> impl Strategy<Value = MixSpec> {
    (
        (0u8..3, 1u64..=32, 1usize..=4),
        (0u8..3, 1u64..=32, 1usize..=4),
        1usize..=3,
        0u64..1000,
    )
        .prop_map(|(a, b, storage_nodes, seed)| MixSpec {
            tenants: [a, b],
            storage_nodes,
            seed,
        })
}

fn op_name(sel: u8) -> &'static str {
    match sel % 3 {
        0 => "sum",
        1 => "gaussian2d",
        _ => "stats",
    }
}

fn params(op: &str) -> KernelParams {
    if op == "gaussian2d" {
        KernelParams::with_width(1024)
    } else {
        KernelParams::default()
    }
}

fn build(spec: &MixSpec) -> (DriverConfig, Workload) {
    let mixes: Vec<(String, KernelParams, u64, usize)> = spec
        .tenants
        .iter()
        .map(|&(op_sel, mb, ranks)| {
            let op = op_name(op_sel);
            (op.to_string(), params(op), mb << 20, ranks)
        })
        .collect();
    let workload = Workload::multi_tenant(&mixes, spec.storage_nodes);
    let mut cfg = DriverConfig::paper(Scheme::dosas_default());
    cfg.cluster.storage_nodes = spec.storage_nodes;
    cfg.seed = spec.seed;
    (cfg, workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: every completed byte belongs to exactly one tenant, so
    /// the two tenants' bandwidth shares sum to the aggregate to within
    /// 1e-9 relative — and neither share exceeds what that tenant demanded.
    #[test]
    fn tenant_shares_partition_aggregate_bandwidth(spec in arb_spec()) {
        let (cfg, workload) = build(&spec);
        let demand = workload.tenant_request_bytes();
        let m = Driver::run(cfg, &workload);

        prop_assert_eq!(m.records.len(), workload.rank_count());
        let t = m.tenants.as_ref().expect("tenanted run yields a report");
        prop_assert_eq!(t.per_tenant.len(), 2);

        let share_sum: f64 = t.per_tenant.iter().map(|p| p.achieved_bandwidth).sum();
        prop_assert!(
            (share_sum - m.achieved_bandwidth).abs() <= 1e-9 * m.achieved_bandwidth,
            "shares {} must sum to aggregate {}",
            share_sum,
            m.achieved_bandwidth
        );

        for p in &t.per_tenant {
            // A tenant is never credited beyond its demand: completed bytes
            // are bounded by requested bytes, hence its bandwidth share by
            // demand / makespan.
            prop_assert!(
                p.bytes <= demand[p.tenant] as f64 * (1.0 + 1e-9),
                "tenant {} credited {} B over demand {} B",
                p.tenant,
                p.bytes,
                demand[p.tenant]
            );
            prop_assert!(
                p.achieved_bandwidth <= demand[p.tenant] as f64 / m.makespan_secs
                    * (1.0 + 1e-9)
            );
            prop_assert!(p.requests > 0, "both tenants placed at least one rank");
            prop_assert!(p.p95_latency_secs >= 0.0);
        }

        // Jain index over two active tenants lives in (1/2, 1].
        prop_assert!(
            t.jain_fairness > 0.5 - 1e-12 && t.jain_fairness <= 1.0 + 1e-12,
            "two-tenant Jain index out of range: {}",
            t.jain_fairness
        );
    }
}
