//! Request-autopsy invariants (DESIGN.md §14).
//!
//! The causal-span layer promises an *exact additive* decomposition: every
//! request's hop services and waits sum to its end-to-end latency (within
//! 1e-9 relative — pure float summation error, no model slack), every
//! attribution partition (cause / tenant / node) sums to the aggregate
//! wait, and the critical path tiles `[0, last rank finish]`. Because hops
//! are recorded inside event handlers, which every executor replays in an
//! identical total order, the report is also byte-identical across
//! `ExecMode::Serial` and `Parallel { 2, 8 }` — checked on the rendered
//! text, the artifact `dosas-sim --autopsy` ships.

use dosas_repro::prelude::*;

const MIB: u64 = 1024 * 1024;

/// Discfarm's first storage node (8 compute nodes come first).
const STORAGE_NODE: usize = 8;

/// Relative additivity tolerance: float summation error only.
const REL_TOL: f64 = 1e-9;

fn faulted_plan() -> FaultPlan {
    // Windows sized to overlap a sub-second contended run: the disk stall
    // catches the first wave of reads, the CPU slowdown the kernels.
    FaultPlan::new()
        .inject(
            STORAGE_NODE,
            FaultKind::CpuSlowdown { factor: 0.4 },
            SimTime::from_secs_f64(0.05),
            SimSpan::from_secs_f64(0.5),
        )
        .inject(
            STORAGE_NODE,
            FaultKind::DiskStall,
            SimTime::from_secs_f64(0.01),
            SimSpan::from_secs_f64(0.2),
        )
        .inject(
            STORAGE_NODE + 1,
            FaultKind::NetBandwidthDip { factor: 0.5 },
            SimTime::from_secs_f64(0.0),
            SimSpan::from_secs_f64(1.0),
        )
}

/// Two tenants contending over two storage nodes, faults on.
fn tenant_cfg(scheme: Scheme, seed: u64) -> DriverConfig {
    DriverConfig {
        cluster: ClusterConfig {
            storage_nodes: 2,
            ..ClusterConfig::discfarm()
        },
        scheme,
        rates: OpRates::paper(),
        seed,
        data_plane: false,
        trace: false,
        fault_plan: faulted_plan(),
        slos: Vec::new(),
        obs: ObsConfig::default(),
        autopsy: true,
    }
}

fn tenant_workload() -> Workload {
    Workload::multi_tenant(
        &[
            (
                "gaussian2d".into(),
                KernelParams::with_width(1024),
                24 * MIB,
                3,
            ),
            ("sum".into(), KernelParams::default(), 12 * MIB, 3),
        ],
        2,
    )
}

fn assert_additive(report: &AutopsyReport) {
    assert!(!report.requests.is_empty(), "autopsy recorded no requests");
    for r in &report.requests {
        let lat = r.latency_secs();
        let sum = r.service_secs() + r.wait_secs();
        assert!(
            (sum - lat).abs() <= REL_TOL * lat.max(1.0),
            "app {}: hops sum to {sum} but end-to-end is {lat}",
            r.app
        );
        for pair in r.hops.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "app {}: hop gap", r.app);
        }
    }
    let total = report.total_wait_secs;
    for (name, part) in [
        (
            "cause",
            report
                .wait_by_cause
                .iter()
                .map(|c| c.wait_secs)
                .sum::<f64>(),
        ),
        (
            "tenant",
            report.per_tenant.iter().map(|t| t.wait_secs).sum::<f64>(),
        ),
        (
            "node",
            report.per_node.iter().map(|n| n.wait_secs).sum::<f64>(),
        ),
    ] {
        assert!(
            (part - total).abs() <= REL_TOL * total.max(1.0),
            "per-{name} waits sum to {part}, aggregate is {total}"
        );
    }
    let cp = &report.critical_path;
    let sum = cp.service_secs + cp.wait_secs;
    assert!(
        (sum - cp.finish_secs).abs() <= REL_TOL * cp.finish_secs.max(1.0),
        "critical path sums to {sum}, rank finished at {}",
        cp.finish_secs
    );
    assert!(!cp.segments.is_empty(), "critical path has no segments");
    for pair in cp.segments.windows(2) {
        assert_eq!(pair[0].end, pair[1].start, "critical-path segment gap");
    }
}

/// Faulted two-tenant DOSAS run: every additivity invariant holds, both
/// tenants appear in the attribution, and at least one fault-window wait
/// was classified as such.
#[test]
fn faulted_tenant_run_decomposes_exactly() {
    for scheme in [
        Scheme::dosas_default(),
        Scheme::ActiveStorage,
        Scheme::Traditional,
    ] {
        let m = Driver::run(tenant_cfg(scheme.clone(), 11), &tenant_workload());
        let report = m.autopsy.as_ref().expect("autopsy on");
        assert_additive(report);
        assert!(
            report.total_wait_secs > 0.0,
            "scheme {scheme:?}: a contended faulted run must wait somewhere"
        );
        let tenants: Vec<Option<usize>> = report.per_tenant.iter().map(|t| t.tenant).collect();
        assert!(
            tenants.contains(&Some(0)) && tenants.contains(&Some(1)),
            "scheme {scheme:?}: both tenants should accumulate wait, got {tenants:?}"
        );
        assert!(
            report
                .wait_by_cause
                .iter()
                .any(|c| c.cause == "fault-stall"),
            "scheme {scheme:?}: fault windows should surface as fault-stall waits"
        );
    }
}

/// The rendered report — the byte-for-byte artifact `dosas-sim --autopsy`
/// writes — is identical across executors, and so is the full serialized
/// `RunMetrics` carrying it.
#[test]
fn autopsy_is_bit_identical_across_exec_modes() {
    let run = |mode: ExecMode| {
        let m = Driver::run_with(
            tenant_cfg(Scheme::dosas_default(), 7),
            &tenant_workload(),
            mode,
        );
        let rendered = m.autopsy.as_ref().expect("autopsy on").render(5);
        let json = serde_json::to_string_pretty(&m).expect("RunMetrics serializes");
        (rendered, json)
    };
    let (serial_txt, serial_json) = run(ExecMode::Serial);
    assert!(serial_txt.contains("# request autopsy"));
    for threads in [2usize, 8] {
        let (par_txt, par_json) = run(ExecMode::Parallel { threads });
        assert_eq!(serial_txt, par_txt, "{threads}-thread render diverged");
        assert_eq!(serial_json, par_json, "{threads}-thread metrics diverged");
    }
}

/// The autopsy is observational: switching it on changes no simulated
/// outcome, and switching it off leaves no trace in the serialized metrics
/// (the goldens' byte-identity guarantee).
#[test]
fn autopsy_is_zero_cost_when_off_and_observational_when_on() {
    let mut cfg_off = tenant_cfg(Scheme::dosas_default(), 7);
    cfg_off.autopsy = false;
    let off = Driver::run(cfg_off, &tenant_workload());
    let on = Driver::run(tenant_cfg(Scheme::dosas_default(), 7), &tenant_workload());
    assert!(off.autopsy.is_none());
    assert_eq!(
        off.makespan_secs, on.makespan_secs,
        "autopsy changed timing"
    );
    assert_eq!(off.events, on.events, "autopsy changed the event stream");
    let json = serde_json::to_string_pretty(&off).expect("serializes");
    assert!(
        !json.contains("\"autopsy\""),
        "disabled autopsy must not appear in serialized metrics"
    );
}

/// Randomized additivity: arbitrary small workloads (scheme, fan-out,
/// request size, optional faults) keep every request's decomposition exact
/// and every partition summing to the aggregate.
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn random_runs_decompose_exactly(
            seed in 0u64..1_000,
            per_server in 1usize..4,
            storage in 1usize..3,
            mib in 1u64..8,
            scheme_ix in 0usize..3,
            fault in (0u8..2).prop_map(|b| b == 1),
        ) {
            let scheme = match scheme_ix {
                0 => Scheme::Traditional,
                1 => Scheme::ActiveStorage,
                _ => Scheme::dosas_default(),
            };
            let mut cfg = tenant_cfg(scheme, seed);
            cfg.cluster = ClusterConfig {
                storage_nodes: storage,
                ..ClusterConfig::discfarm()
            };
            if !fault {
                cfg.fault_plan = FaultPlan::new();
            }
            let workload = Workload::uniform_active(
                per_server,
                storage,
                mib * MIB,
                "gaussian2d",
                KernelParams::with_width(1024),
            );
            let m = Driver::run(cfg, &workload);
            let report = m.autopsy.as_ref().expect("autopsy on");
            assert_additive(report);
        }
    }
}
